// Differential tests for the columnar batch engine (docs/vectorized.md):
// row and batch execution of the same compiled plan must produce
// byte-identical embeddings, the runtime audits must stay clean under
// the batch kernels, EXPLAIN must surface the batch layout only under
// --engine=batch, and tampered batch-layout claims must be rejected by
// the compiled-plan verifier before anything runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "dataflow/partitioning_audit.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/exec/batch_layout.h"

namespace gradoop::query {
namespace {

epgm::LogicalGraph SmallLdbc() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

PlannerOptions BatchOptions(int batch_size = exec::kDefaultBatchSize) {
  PlannerOptions options;
  options.engine = PlannerOptions::ExecutionEngine::kBatch;
  options.batch_size = batch_size;
  return options;
}

// The differential corpus: the paper's six queries (joins, expansions,
// scan predicates) plus shapes they do not cover — a value join, RETURN
// DISTINCT and LIMIT.
std::vector<std::string> Corpus() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  const auto elements = ldbc::LdbcGenerator(cfg).GenerateElements();
  const std::string name =
      ldbc::PickFirstName(elements, ldbc::Selectivity::kLow);
  return {
      ldbc::Query1(name),
      ldbc::Query2(name),
      ldbc::Query3(name),
      ldbc::Query4(),
      ldbc::Query5(),
      ldbc::Query6(),
      // Value join between disjoint components.
      "MATCH (a:Person)-[:isLocatedIn]->(c1:City), "
      "(b:Person)-[:isLocatedIn]->(c2:City) "
      "WHERE a.firstName = b.firstName RETURN *",
      "MATCH (p:Person)-[:hasInterest]->(t:Tag) RETURN DISTINCT t.name",
      "MATCH (p1:Person)-[:knows]->(p2:Person) RETURN p1, p2 LIMIT 25",
  };
}

// Canonical result: every embedding's exact wire encoding, sorted. Two
// engines agree iff these vectors are equal byte for byte (join order
// inside one plan is fixed, only partition/emission order may differ).
std::vector<std::string> Canonical(CypherEngine* engine,
                                   const std::string& query) {
  auto result = engine->Execute(query);
  EXPECT_TRUE(result.ok()) << query << " -> " << result.status();
  std::vector<std::string> rows;
  if (!result.ok()) return rows;
  for (const Embedding& e : result.value().embeddings.data.Collect()) {
    std::string encoded;
    e.EncodeTo(&encoded);
    rows.push_back(std::move(encoded));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(BatchEngineTest, RowAndBatchByteIdenticalOnCorpus) {
  auto graph = SmallLdbc();
  CypherEngine row(graph);
  CypherEngine batch(graph, BatchOptions());
  // A tiny batch size forces every kernel across its flush boundaries
  // (scans, join probes and residual rollbacks all straddle batches).
  CypherEngine tiny(graph, BatchOptions(/*batch_size=*/7));
  for (const std::string& q : Corpus()) {
    const std::vector<std::string> expected = Canonical(&row, q);
    EXPECT_EQ(expected, Canonical(&batch, q)) << q;
    EXPECT_EQ(expected, Canonical(&tiny, q)) << q;
  }
}

TEST(BatchEngineTest, BothMorphismSemanticsAgree) {
  auto graph = SmallLdbc();
  CypherEngine row(graph);
  CypherEngine batch(graph, BatchOptions(/*batch_size=*/16));
  for (const MorphismSetting& semantics :
       {MorphismSetting::Neo4j(), MorphismSetting::FullIsomorphism()}) {
    for (const std::string& q : {ldbc::Query5(), ldbc::Query6()}) {
      auto a = row.Execute(q, semantics);
      auto b = batch.Execute(q, semantics);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(a.value().embeddings.data.Count(),
                b.value().embeddings.data.Count())
          << q;
    }
  }
}

TEST(BatchEngineTest, RuntimeAuditsCleanUnderBatchEngine) {
  auto graph = SmallLdbc();
  // Broadcast off so repartition joins (and their elisions) actually run;
  // the memory audit aborts the process on a violated bound and the
  // partitioning audit aborts on a misplaced record, so surviving the
  // corpus is the assertion.
  PlannerOptions options = BatchOptions(/*batch_size=*/32);
  options.allow_broadcast = false;
  CypherEngine engine(graph, options);
  dataflow::PartitioningAuditStats::Instance().Reset();
  setenv("GRADOOP_AUDIT_MEMORY", "1", 1);
  setenv("GRADOOP_AUDIT_PARTITIONING", "1", 1);
  for (const std::string& q : {ldbc::Query4(), ldbc::Query5(),
                               ldbc::Query6()}) {
    auto result = engine.Execute(q);
    EXPECT_TRUE(result.ok()) << q << " -> " << result.status();
  }
  unsetenv("GRADOOP_AUDIT_MEMORY");
  unsetenv("GRADOOP_AUDIT_PARTITIONING");
  const auto& audit = dataflow::PartitioningAuditStats::Instance();
  EXPECT_GT(audit.checks(), 0u);
  EXPECT_EQ(audit.misplaced_records(), 0u);
}

TEST(BatchEngineTest, ScanSharingWorksUnderBatchEngine) {
  auto graph = SmallLdbc();
  PlannerOptions shared_options = BatchOptions();
  shared_options.share_scan_results = true;
  CypherEngine row(graph);
  CypherEngine plain(graph, BatchOptions());
  CypherEngine shared(graph, shared_options);
  // Q6 scans :hasInterest three times; the BatchScanCache must reuse the
  // columnar scan without changing the result.
  const std::vector<std::string> expected = Canonical(&row, ldbc::Query6());
  EXPECT_EQ(expected, Canonical(&plain, ldbc::Query6()));
  EXPECT_EQ(expected, Canonical(&shared, ldbc::Query6()));
}

TEST(BatchEngineTest, ExplainRendersBatchLayoutOnlyUnderBatchEngine) {
  auto graph = SmallLdbc();
  CypherEngine row(graph);
  CypherEngine batch(graph, BatchOptions());
  CypherEngine sized(graph, BatchOptions(/*batch_size=*/256));
  auto row_plan = row.Explain(ldbc::Query5());
  auto batch_plan = batch.Explain(ldbc::Query5());
  auto sized_plan = sized.Explain(ldbc::Query5());
  ASSERT_TRUE(row_plan.ok()) << row_plan.status();
  ASSERT_TRUE(batch_plan.ok()) << batch_plan.status();
  ASSERT_TRUE(sized_plan.ok()) << sized_plan.status();
  // Row-engine EXPLAIN stays byte-stable: no batch annotations at all.
  EXPECT_EQ(row_plan.value().find("batch="), std::string::npos);
  EXPECT_NE(batch_plan.value().find("batch=1024"), std::string::npos)
      << batch_plan.value();
  EXPECT_NE(sized_plan.value().find("batch=256"), std::string::npos)
      << sized_plan.value();
}

TEST(BatchEngineTest, ExplainAnalyzeReportsBatchesAndSelectivity) {
  auto graph = SmallLdbc();
  CypherEngine batch(graph, BatchOptions());
  auto analyzed = batch.ExplainAnalyze(ldbc::Query5());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_NE(analyzed.value().find("batches="), std::string::npos)
      << analyzed.value();
  EXPECT_NE(analyzed.value().find("sel="), std::string::npos)
      << analyzed.value();
  // The row engine records no batches, so the renderer omits them.
  CypherEngine row(graph);
  auto row_analyzed = row.ExplainAnalyze(ldbc::Query5());
  ASSERT_TRUE(row_analyzed.ok()) << row_analyzed.status();
  EXPECT_EQ(row_analyzed.value().find("batches="), std::string::npos);
}

TEST(BatchEngineTest, VerifierRejectsTamperedBatchLayout) {
  auto graph = SmallLdbc();
  CypherEngine engine(graph);
  auto result = engine.Execute(ldbc::Query5());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result.value().physical, nullptr);
  const int num_workers = graph.vertices().context()->num_workers();
  ASSERT_TRUE(analysis::VerifyCompiledPlan(result.value().query_graph,
                                           *result.value().physical,
                                           num_workers)
                  .ok());
  // An all-zero layout is not what DeriveBatchLayout yields.
  result.value().physical->set_batch_layout(exec::BatchLayout{});
  const Status s = analysis::VerifyCompiledPlan(
      result.value().query_graph, *result.value().physical, num_workers);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("batch layout"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("not derivable"), std::string::npos)
      << s.message();
}

TEST(BatchEngineTest, VerifierRejectsMismatchedBatchSize) {
  // A plan compiled for one batch size does not verify against another:
  // the claim pins the exact buffer capacity the kernels will allocate.
  auto graph = SmallLdbc();
  CypherEngine engine(graph, BatchOptions(/*batch_size=*/512));
  auto result = engine.Execute(ldbc::Query5());
  ASSERT_TRUE(result.ok()) << result.status();
  const int num_workers = graph.vertices().context()->num_workers();
  EXPECT_TRUE(analysis::VerifyCompiledPlan(result.value().query_graph,
                                           *result.value().physical,
                                           num_workers, /*batch_size=*/512)
                  .ok());
  const Status s = analysis::VerifyCompiledPlan(
      result.value().query_graph, *result.value().physical, num_workers,
      /*batch_size=*/1024);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("batch layout"), std::string::npos)
      << s.message();
}

}  // namespace
}  // namespace gradoop::query
