// Property-based correctness tests: the distributed engine's results are
// compared against the naive backtracking matcher on randomly generated
// graphs, across queries and morphism settings. This is the repository's
// primary end-to-end correctness oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "cypher/parser.h"
#include "query/cypher_engine.h"
#include "query/naive_matcher.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::Vertex;

struct RandomGraph {
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
};

// Small random property graph with Person/Tag vertices and knows/likes
// edges; value ranges kept tiny so predicates hit frequently.
RandomGraph MakeRandomGraph(uint64_t seed, int num_vertices, int num_edges) {
  Random rng(seed);
  RandomGraph g;
  for (int i = 0; i < num_vertices; ++i) {
    const bool person = rng.NextBool(0.7);
    Properties props;
    props.Set("x", static_cast<int64_t>(rng.NextUint64(4)));
    if (person) {
      props.Set("name", std::string(1, static_cast<char>(
                                           'A' + rng.NextUint64(3))));
    }
    g.vertices.emplace_back(i + 1, person ? "Person" : "Tag",
                            std::move(props));
  }
  for (int i = 0; i < num_edges; ++i) {
    const uint64_t src = 1 + rng.NextUint64(num_vertices);
    const uint64_t dst = 1 + rng.NextUint64(num_vertices);
    Properties props;
    props.Set("w", static_cast<int64_t>(rng.NextUint64(3)));
    g.edges.emplace_back(1000 + i, rng.NextBool(0.6) ? "knows" : "likes",
                         src, dst, std::move(props));
  }
  return g;
}

// Converts one engine embedding into the naive binding representation.
NaiveBinding ToBinding(const Embedding& e, const EmbeddingMetaData& meta) {
  NaiveBinding b;
  for (const std::string& var : meta.Variables()) {
    const int c = meta.IdColumn(var);
    if (e.IsPathEntry(c)) {
      b.paths[var] = e.PathAt(c);
    } else {
      b.elements[var] = e.IdAt(c);
    }
  }
  return b;
}

std::vector<NaiveBinding> Sorted(std::vector<NaiveBinding> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void ExpectEngineMatchesOracle(const RandomGraph& g, const std::string& query,
                               const MorphismSetting& semantics,
                               const std::string& context) {
  auto graph = LogicalGraph::FromVectors(dataflow::MakeContext(),
                                         GraphHead(0, "G"), g.vertices,
                                         g.edges);
  CypherEngine engine(graph);
  auto result = engine.Execute(query, semantics);
  ASSERT_TRUE(result.ok()) << context << ": " << result.status();

  NaiveMatcher oracle(g.vertices, g.edges);
  auto expected = oracle.FindMatches(result.value().query_graph, semantics);

  std::vector<NaiveBinding> actual;
  for (const Embedding& e : result.value().embeddings.data.Collect()) {
    actual.push_back(ToBinding(e, result.value().embeddings.meta));
  }
  ASSERT_EQ(actual.size(), expected.size()) << context;
  EXPECT_EQ(Sorted(std::move(actual)), Sorted(std::move(expected)))
      << context;
}

struct OracleCase {
  const char* name;
  const char* query;
};

const OracleCase kQueries[] = {
    {"vertex_scan", "MATCH (p:Person) RETURN *"},
    {"filtered_scan", "MATCH (p:Person) WHERE p.x > 1 RETURN *"},
    {"edge", "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *"},
    {"edge_untyped", "MATCH (a)-[e]->(b) RETURN *"},
    {"incoming", "MATCH (a:Tag)<-[e:likes]-(b:Person) RETURN *"},
    {"undirected", "MATCH (a:Person)-[e:knows]-(b:Person) RETURN *"},
    {"two_hop",
     "MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c:Person) "
     "RETURN *"},
    {"triangle",
     "MATCH (a)-[e1:knows]->(b), (b)-[e2:knows]->(c), (a)-[e3:knows]->(c) "
     "RETURN *"},
    {"cross_predicate",
     "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.x < b.x RETURN *"},
    {"property_map", "MATCH (a:Person {name: 'A'})-[e]->(b) RETURN *"},
    {"edge_predicate",
     "MATCH (a)-[e:knows]->(b) WHERE e.w = 1 RETURN *"},
    {"disjunction",
     "MATCH (a:Person)-[e]->(b) WHERE a.x = 0 OR b.x = 2 RETURN *"},
    {"label_alternation", "MATCH (m:Person|Tag)-[e:likes]->(t:Tag) RETURN *"},
    {"self_loop", "MATCH (a)-[e]->(a) RETURN *"},
    {"var_length_1_2", "MATCH (a:Person)-[e:knows*1..2]->(b) RETURN *"},
    {"var_length_0_2", "MATCH (a:Person)-[e:knows*0..2]->(b) RETURN *"},
    {"var_length_exact_3", "MATCH (a:Person)-[e:knows*3]->(b) RETURN *"},
    {"var_length_into_pattern",
     "MATCH (a:Person)-[e0:likes]->(t:Tag), (a)-[e:knows*1..2]->(b:Person) "
     "RETURN *"},
    {"var_length_cycle",
     "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e:knows*1..2]->(a) "
     "RETURN *"},
    {"xor_predicate",
     "MATCH (a:Person)-[e]->(b) WHERE a.x = 1 XOR b.x = 1 RETURN *"},
    {"not_predicate",
     "MATCH (a:Person)-[e:knows]->(b) WHERE NOT a.x = b.x RETURN *"},
    {"two_var_length",
     "MATCH (a:Person)-[e1:knows*1..2]->(b), (a)-[e2:knows*1..2]->(c) "
     "RETURN *"},
    {"var_length_zero_closing",
     "MATCH (a:Person)-[e0:knows]->(b:Person), (a)-[e:knows*0..2]->(b) "
     "RETURN *"},
    {"cartesian", "MATCH (a:Tag), (b:Tag) RETURN *"},
    {"cartesian_filtered",
     "MATCH (a:Tag), (b:Tag) WHERE a.x < b.x RETURN *"},
    {"value_join",
     "MATCH (a:Person), (b:Tag) WHERE a.x = b.x RETURN *"},
    {"four_chain",
     "MATCH (a)-[e1:knows]->(b)-[e2:knows]->(c)-[e3:knows]->(d) RETURN *"},
};

class OracleTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(OracleTest, EngineMatchesNaiveMatcher) {
  const int semantics_index = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const MorphismSetting settings[] = {
      MorphismSetting::FullHomomorphism(),
      MorphismSetting::Neo4j(),
      MorphismSetting::FullIsomorphism(),
      {MatchSemantics::kIsomorphism, MatchSemantics::kHomomorphism},
  };
  const char* setting_names[] = {"homo/homo", "homo/iso", "iso/iso",
                                 "iso/homo"};
  const MorphismSetting semantics = settings[semantics_index];

  RandomGraph g = MakeRandomGraph(seed, 10 + seed % 6, 18 + seed % 9);
  for (const OracleCase& c : kQueries) {
    ExpectEngineMatchesOracle(
        g, c.query, semantics,
        std::string(c.name) + " seed=" + std::to_string(seed) + " " +
            setting_names[semantics_index]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Semantics, OracleTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1u, 2u, 3u, 7u, 11u)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Alternative plans must produce identical results (plan choice cannot
// change semantics).
TEST(OraclePlanEquivalenceTest, AllPlannerModesAgree) {
  RandomGraph g = MakeRandomGraph(5, 12, 24);
  auto graph = LogicalGraph::FromVectors(dataflow::MakeContext(),
                                         GraphHead(0, "G"), g.vertices,
                                         g.edges);
  PlannerOptions left_deep;
  left_deep.mode = PlannerOptions::Mode::kLeftDeep;
  PlannerOptions dp;
  dp.mode = PlannerOptions::Mode::kDynamicProgramming;
  CypherEngine greedy(graph);
  CypherEngine ld(graph, left_deep);
  CypherEngine dyn(graph, dp);
  for (const OracleCase& c : kQueries) {
    auto a = greedy.Count(c.query);
    auto b = ld.Count(c.query);
    auto d = dyn.Count(c.query);
    ASSERT_TRUE(a.ok()) << c.name << ": " << a.status();
    ASSERT_TRUE(b.ok()) << c.name << ": " << b.status();
    ASSERT_TRUE(d.ok()) << c.name << ": " << d.status();
    EXPECT_EQ(a.value(), b.value()) << c.name;
    EXPECT_EQ(a.value(), d.value()) << c.name;
  }
}

// Worker count must not change results.
TEST(OraclePlanEquivalenceTest, WorkerCountInvariant) {
  RandomGraph g = MakeRandomGraph(9, 14, 28);
  std::vector<uint64_t> counts;
  for (int workers : {1, 3, 8}) {
    dataflow::ClusterConfig cfg;
    cfg.num_workers = workers;
    auto graph = LogicalGraph::FromVectors(dataflow::MakeContext(cfg),
                                           GraphHead(0, "G"), g.vertices,
                                           g.edges);
    CypherEngine engine(graph);
    auto count = engine.Count(
        "MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c) RETURN *");
    ASSERT_TRUE(count.ok());
    counts.push_back(count.value());
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
}

}  // namespace
}  // namespace gradoop::query
