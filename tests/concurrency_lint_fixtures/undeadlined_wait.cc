// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). A deadline-less
// condition-variable .wait( — the sleeper can never observe a cancelled
// token, so a cancelled query would hang on it forever. CC008 demands a
// bounded wait_for/wait_until loop (thread_pool.cc is the pattern) or a
// "// cancellation:" justification (docs/cancellation.md).
#include <condition_variable>

#include "common/thread_annotations.h"

namespace fixture {

class Latch {
 public:
  void Await() {
    gradoop::common::MutexLock lock(mu_);
    cv_.wait(lock, [this]() REQUIRES(mu_) { return done_; });  // CC008
  }

 private:
  gradoop::common::Mutex mu_{gradoop::common::LockRank::kDataflow,
                             "fixture.latch"};
  std::condition_variable_any cv_;
  bool done_ GUARDED_BY(mu_) = false;
};

}  // namespace fixture
