// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). Opting a function out of
// -Wthread-safety is sometimes necessary (init-order, fork handlers)
// but must carry a "// justification:" comment; this one does not.
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  int UnsafePeek() NO_THREAD_SAFETY_ANALYSIS {  // CC006
    return value_;
  }

 private:
  gradoop::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
