// Negative-control fixture for tools/concurrency_lint: idiomatic use of
// every construct the lint polices — annotated ranked mutex, documented
// atomic, justified analysis escape, and raw primitives appearing only
// inside comments and string literals. Linting this file must exit 0;
// CI pins that alongside the seeded-violation fixtures.
#include <atomic>
#include <string>

#include "common/thread_annotations.h"

namespace fixture {

// Mentioning std::mutex, std::lock_guard or std::condition_variable in
// a comment is fine; the lint strips comments before matching.
class CleanCounter {
 public:
  void Add(int v) {
    gradoop::common::MutexLock lock(mu_);
    value_ += v;
  }

  // justification: called from the crash handler, where the lock may
  // already be held by the crashed thread; a torn read is acceptable.
  int CrashPeek() NO_THREAD_SAFETY_ANALYSIS { return value_; }

  std::string Describe() const {
    return "uses std::mutex internally";  // string literal, not code
  }

 private:
  gradoop::common::Mutex mu_{gradoop::common::LockRank::kDataflow,
                             "fixture.clean_counter"};
  int value_ GUARDED_BY(mu_) = 0;
  // ordering: relaxed — monotonic event tally, publishes nothing.
  std::atomic<int> events_{0};
};

}  // namespace fixture
