// Negative-control fixture for tools/concurrency_lint: idiomatic use of
// every construct the lint polices — annotated ranked mutex, documented
// atomic, justified analysis escape, and raw primitives appearing only
// inside comments and string literals. Linting this file must exit 0;
// CI pins that alongside the seeded-violation fixtures.
#include <atomic>
#include <string>

#include "common/thread_annotations.h"

namespace fixture {

// Mentioning std::mutex, std::lock_guard or std::condition_variable in
// a comment is fine; the lint strips comments before matching.
class CleanCounter {
 public:
  void Add(int v) {
    gradoop::common::MutexLock lock(mu_);
    value_ += v;
  }

  // justification: called from the crash handler, where the lock may
  // already be held by the crashed thread; a torn read is acceptable.
  int CrashPeek() NO_THREAD_SAFETY_ANALYSIS { return value_; }

  std::string Describe() const {
    return "uses std::mutex internally";  // string literal, not code
  }

 private:
  gradoop::common::Mutex mu_{gradoop::common::LockRank::kDataflow,
                             "fixture.clean_counter"};
  int value_ GUARDED_BY(mu_) = 0;
  // ordering: relaxed — monotonic event tally, publishes nothing.
  std::atomic<int> events_{0};
};

struct Token {
  bool CheckCancelled() { return false; }
};

// Both idiomatic ways to satisfy CC007: a stream loop that polls the
// token, and one whose boundedness is justified instead.
inline int SumStream(const int* src, int n, Token& cancel) {
  int total = 0;
  for (int i = 0; i < n && src != nullptr; ++i) {
    if (cancel.CheckCancelled()) break;
    total += src[i];
  }
  // cancellation: O(1) — reads a single element, no per-record work.
  for (int i = 0; i < 1 && src != nullptr; ++i) total += src[0];
  return total;
}

}  // namespace fixture
