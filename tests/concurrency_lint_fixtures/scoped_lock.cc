// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). std::scoped_lock over a
// std::recursive_mutex: both the recursive primitive (CC001 — recursion
// also defeats the rank checker's self-deadlock guarantee) and the raw
// RAII guard (CC002) must be flagged.
#include <mutex>

namespace fixture {

class Journal {
 public:
  void Append(int v) {
    std::scoped_lock lock(mu_);  // CC002
    entries_ += v;
  }

 private:
  std::recursive_mutex mu_;  // CC001
  int entries_ = 0;
};

}  // namespace fixture
