// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). Reader-writer variants
// are still raw primitives: std::shared_mutex members and
// std::shared_lock guards bypass common::Mutex just like std::mutex
// does, so CC001/CC002 must catch them too.
#include <shared_mutex>

namespace fixture {

class Registry {
 public:
  int Get() const {
    std::shared_lock<std::shared_mutex> lock(mu_);  // CC002
    return value_;
  }

 private:
  mutable std::shared_mutex mu_;  // CC001
  int value_ = 0;
};

}  // namespace fixture
