// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). A detached thread
// outlives every shutdown protocol the engine has.
#include <thread>

namespace fixture {

inline void FireAndForget() {
  std::thread t([] {});
  t.detach();  // CC005
}

}  // namespace fixture
