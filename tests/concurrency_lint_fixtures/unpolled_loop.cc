// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). A kernel loop over a
// dataset stream (`src`) that never polls the CancellationToken and
// carries no "// cancellation:" justification — the unbounded
// checkpoint interval CC007 exists to flag: a query cancelled mid-loop
// would run this to completion (docs/cancellation.md).
#include <cstdint>
#include <vector>

namespace fixture {

struct Record {
  uint64_t id;
};

uint64_t SumIds(const std::vector<Record>& src) {
  uint64_t total = 0;
  for (const Record& rec : src) {  // CC007: no poll, no justification
    total += rec.id;
  }
  return total;
}

}  // namespace fixture
