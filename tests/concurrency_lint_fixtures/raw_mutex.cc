// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). Raw mutex + raw RAII
// lock: the engine-wide rule is common::Mutex/common::MutexLock only,
// so the locking is visible to -Wthread-safety and the rank checker.
#include <mutex>

namespace fixture {

class Cache {
 public:
  void Put(int v) {
    std::lock_guard<std::mutex> lock(mu_);  // CC002
    value_ = v;
  }

 private:
  std::mutex mu_;  // CC001
  int value_ = 0;
};

}  // namespace fixture
