// Seeded violation fixture for tools/concurrency_lint (NOT built; CI
// pins that linting this file exits non-zero). A std::atomic member
// with no adjacent comment stating the memory-order discipline it
// relies on — exactly the kind of "it compiles, ship it" atomic the
// lint exists to flag.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Stats {
  std::atomic<uint64_t> hits{0};  // CC004: no discipline stated anywhere near
};

}  // namespace fixture
