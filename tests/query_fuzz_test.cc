// Query fuzzing: randomly generated (but valid) Cypher patterns are run
// through the full engine and compared against the naive backtracking
// matcher. Complements oracle_test's hand-picked query shapes with
// breadth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/random.h"
#include "cypher/parser.h"
#include "dataflow/partitioning_audit.h"
#include "query/cypher_engine.h"
#include "query/graph_statistics.h"
#include "query/naive_matcher.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::Vertex;

struct SmallGraph {
  std::vector<Vertex> vertices;
  std::vector<Edge> edges;
};

SmallGraph MakeGraph(uint64_t seed) {
  Random rng(seed);
  SmallGraph g;
  const int n = 8 + static_cast<int>(rng.NextUint64(4));
  for (int i = 0; i < n; ++i) {
    Properties props;
    props.Set("x", static_cast<int64_t>(rng.NextUint64(3)));
    g.vertices.emplace_back(i + 1,
                            rng.NextBool(0.6) ? "Person" : "Tag",
                            std::move(props));
  }
  const int m = 14 + static_cast<int>(rng.NextUint64(8));
  for (int i = 0; i < m; ++i) {
    Properties props;
    props.Set("w", static_cast<int64_t>(rng.NextUint64(3)));
    g.edges.emplace_back(1000 + i,
                         rng.NextBool(0.5) ? "knows" : "likes",
                         1 + rng.NextUint64(n), 1 + rng.NextUint64(n),
                         std::move(props));
  }
  return g;
}

// Emits a random syntactically valid query over variables a..d.
std::string MakeQuery(Random* rng) {
  const int num_vertices = 2 + static_cast<int>(rng->NextUint64(3));
  const char* vars[] = {"a", "b", "c", "d"};
  const char* vertex_labels[] = {"", ":Person", ":Tag", ":Person|Tag"};
  const char* edge_types[] = {"", ":knows", ":likes", ":knows|likes"};

  std::vector<std::string> paths;
  const int num_edges = 1 + static_cast<int>(rng->NextUint64(3));
  int var_length_budget = 1;  // at most one expansion per query (runtime)
  for (int e = 0; e < num_edges; ++e) {
    const int src = static_cast<int>(rng->NextUint64(num_vertices));
    int dst = static_cast<int>(rng->NextUint64(num_vertices));
    std::string rel;
    const bool var_length =
        var_length_budget > 0 && rng->NextBool(0.25);
    std::string edge_var = "e" + std::to_string(e);
    if (var_length) {
      --var_length_budget;
      const int lower = static_cast<int>(rng->NextUint64(2));  // 0 or 1
      const int upper = lower + 1 + static_cast<int>(rng->NextUint64(2));
      rel = "-[" + edge_var + ":knows*" + std::to_string(lower) + ".." +
            std::to_string(upper) + "]->";
    } else {
      const char* type = edge_types[rng->NextUint64(4)];
      switch (rng->NextUint64(3)) {
        case 0:
          rel = "-[" + edge_var + type + "]->";
          break;
        case 1:
          rel = "<-[" + edge_var + type + "]-";
          break;
        default:
          rel = "-[" + edge_var + type + "]-";
          break;
      }
    }
    std::string path = std::string("(") + vars[src] +
                       vertex_labels[rng->NextUint64(4)] + ")" + rel + "(" +
                       vars[dst] + ")";
    paths.push_back(std::move(path));
  }

  std::string query = "MATCH ";
  for (size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) query += ", ";
    query += paths[i];
  }

  // Random predicate on fixed elements.
  if (rng->NextBool(0.6)) {
    const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
    const std::string lhs =
        std::string(vars[rng->NextUint64(num_vertices)]) + ".x";
    const std::string op = ops[rng->NextUint64(6)];
    const std::string rhs =
        rng->NextBool(0.5)
            ? std::to_string(rng->NextUint64(3))
            : std::string(vars[rng->NextUint64(num_vertices)]) + ".x";
    query += " WHERE " + lhs + " " + op + " " + rhs;
  }
  query += " RETURN *";
  return query;
}

NaiveBinding ToBinding(const Embedding& e, const EmbeddingMetaData& meta) {
  NaiveBinding b;
  for (const std::string& var : meta.Variables()) {
    const int c = meta.IdColumn(var);
    if (e.IsPathEntry(c)) {
      b.paths[var] = e.PathAt(c);
    } else {
      b.elements[var] = e.IdAt(c);
    }
  }
  return b;
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, RandomQueriesMatchOracle) {
  const uint64_t seed = GetParam();
  SmallGraph g = MakeGraph(seed);
  auto graph = LogicalGraph::FromVectors(dataflow::MakeContext(),
                                         GraphHead(0, "G"), g.vertices,
                                         g.edges);
  CypherEngine engine(graph);
  // Two ablation engines exercise the partitioning analysis on every
  // executable query: with broadcast off every join repartitions, so
  // shuffle elisions actually fire; `audited` runs them under the
  // runtime audit (each elided shuffle re-hashes its records and aborts
  // on a misplaced one), `unelided` force-disables the analysis. Both
  // must agree with the oracle binding-for-binding — the comparison is
  // canonical, so legitimately different join orders don't matter.
  PlannerOptions repartition_options;
  repartition_options.allow_broadcast = false;
  PlannerOptions unelided_options = repartition_options;
  unelided_options.elide_shuffles = false;
  CypherEngine audited_engine(graph, repartition_options);
  CypherEngine unelided_engine(graph, unelided_options);
  // Engine ablation: the columnar batch engine runs the same plans
  // through the vectorized kernels. A tiny batch size forces every
  // kernel across its flush boundaries on these small graphs.
  PlannerOptions batch_options;
  batch_options.engine = PlannerOptions::ExecutionEngine::kBatch;
  batch_options.batch_size = 4;
  CypherEngine batch_engine(graph, batch_options);
  NaiveMatcher oracle(g.vertices, g.edges);
  GraphStatistics stats = GraphStatistics::Compute(graph);
  Random rng(seed * 7919 + 13);
  dataflow::PartitioningAuditStats::Instance().Reset();

  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string query = MakeQuery(&rng);
    const MorphismSetting semantics = rng.NextBool(0.5)
                                          ? MorphismSetting::Neo4j()
                                          : MorphismSetting::FullIsomorphism();
    // The semantic analyzer must process every generated query without
    // crashing, whether or not the engine accepts it.
    auto ast = cypher::ParseCypher(query);
    ASSERT_TRUE(ast.ok()) << "query: " << query;
    analysis::AnalyzerOptions sema_options;
    sema_options.statistics = &stats;
    sema_options.semantics = semantics;
    auto sema = analysis::AnalyzeQuery(ast.value(), sema_options);
    auto result = engine.Execute(query, semantics);
    // Severity contract: the analyzer may only reject (error severity)
    // queries the engine itself refuses to execute. Warnings are free.
    if (result.ok()) {
      EXPECT_FALSE(sema.HasErrors())
          << "analyzer rejected an executable query: " << query << "\n"
          << sema.ErrorSummary();
    }
    if (!result.ok()) {
      // The generator can produce patterns outside the supported subset
      // (e.g. an undirected edge colliding with a variable-length rule);
      // those must fail cleanly, never crash.
      continue;
    }
    ++executed;
    auto expected =
        oracle.FindMatches(result.value().query_graph, semantics);
    std::vector<NaiveBinding> actual;
    for (const Embedding& e : result.value().embeddings.data.Collect()) {
      actual.push_back(ToBinding(e, result.value().embeddings.meta));
    }
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(actual, expected) << "query: " << query << " seed=" << seed;

    // Ablation pair: audit-enabled elision vs analysis force-disabled.
    setenv("GRADOOP_AUDIT_PARTITIONING", "1", 1);
    auto audited = audited_engine.Execute(query, semantics);
    unsetenv("GRADOOP_AUDIT_PARTITIONING");
    auto unelided = unelided_engine.Execute(query, semantics);
    auto batched = batch_engine.Execute(query, semantics);
    ASSERT_TRUE(audited.ok()) << "query: " << query << " seed=" << seed
                              << " -> " << audited.status();
    ASSERT_TRUE(unelided.ok()) << "query: " << query << " seed=" << seed
                               << " -> " << unelided.status();
    ASSERT_TRUE(batched.ok()) << "query: " << query << " seed=" << seed
                              << " -> " << batched.status();
    for (auto* variant : {&audited, &unelided, &batched}) {
      std::vector<NaiveBinding> bindings;
      for (const Embedding& e : variant->value().embeddings.data.Collect()) {
        bindings.push_back(ToBinding(e, variant->value().embeddings.meta));
      }
      std::sort(bindings.begin(), bindings.end());
      ASSERT_EQ(bindings, expected) << "query: " << query << " seed=" << seed;
    }
  }
  // The generator must not degenerate into all-unsupported queries.
  EXPECT_GT(executed, 20);
  // The audit must actually have fired (repartition plans over queries
  // with shared variables elide at least one shuffle per seed batch) and
  // every audited record must have sat in its proven partition.
  const auto& audit = dataflow::PartitioningAuditStats::Instance();
  EXPECT_GT(audit.checks(), 0u) << "seed=" << seed;
  EXPECT_EQ(audit.misplaced_records(), 0u) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace gradoop::query
