#include <gtest/gtest.h>

#include "query/embedding.h"
#include "query/embedding_meta_data.h"

namespace gradoop::query {
namespace {

using epgm::PropertyValue;

TEST(EmbeddingTest, EmptyEmbedding) {
  Embedding e;
  EXPECT_EQ(e.NumIdEntries(), 0);
  EXPECT_EQ(e.NumProperties(), 0);
  EXPECT_EQ(e.SerializedSize(), 3 * sizeof(uint32_t));
}

TEST(EmbeddingTest, PaperSection33Example) {
  // The physical embedding for the second row of Table 2b:
  //   idData  = {ID,10, PATH,0, ID,30}
  //   pathData = {3, 5, 20, 7}
  //   propData = {5,Alice, 3,Bob}
  Embedding e;
  e.AppendId(10);
  e.AppendPath({5, 20, 7});
  e.AppendId(30);
  e.AppendProperty(PropertyValue("Alice"));
  e.AppendProperty(PropertyValue("Bob"));

  EXPECT_EQ(e.NumIdEntries(), 3);
  EXPECT_FALSE(e.IsPathEntry(0));
  EXPECT_TRUE(e.IsPathEntry(1));
  EXPECT_FALSE(e.IsPathEntry(2));
  EXPECT_EQ(e.IdAt(0), 10u);
  EXPECT_EQ(e.PathAt(1), (std::vector<uint64_t>{5, 20, 7}));
  EXPECT_EQ(e.IdAt(2), 30u);
  EXPECT_EQ(e.NumProperties(), 2);
  EXPECT_EQ(e.PropertyAt(0), PropertyValue("Alice"));
  EXPECT_EQ(e.PropertyAt(1), PropertyValue("Bob"));
}

TEST(EmbeddingTest, IdEntriesAreFixedWidth) {
  // Constant-time access relies on the 9-byte entry layout.
  Embedding e;
  for (uint64_t i = 0; i < 10; ++i) e.AppendId(i * 100);
  EXPECT_EQ(e.id_data().size(), 10 * Embedding::kEntryWidth);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(e.IdAt(i), static_cast<uint64_t>(i) * 100);
  }
}

TEST(EmbeddingTest, MultiplePathsUseOffsets) {
  Embedding e;
  e.AppendPath({1, 2, 3});
  e.AppendPath({4});
  e.AppendPath({});
  EXPECT_EQ(e.PathAt(0), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(e.PathAt(1), (std::vector<uint64_t>{4}));
  EXPECT_EQ(e.PathAt(2), (std::vector<uint64_t>{}));
}

TEST(EmbeddingTest, PropertyTypesRoundTrip) {
  Embedding e;
  e.AppendProperty(PropertyValue::Null());
  e.AppendProperty(PropertyValue(int64_t{2014}));
  e.AppendProperty(PropertyValue(2.5));
  e.AppendProperty(PropertyValue(true));
  e.AppendProperty(PropertyValue("Uni Leipzig"));
  EXPECT_TRUE(e.PropertyAt(0).is_null());
  EXPECT_EQ(e.PropertyAt(1), PropertyValue(int64_t{2014}));
  EXPECT_EQ(e.PropertyAt(2), PropertyValue(2.5));
  EXPECT_EQ(e.PropertyAt(3), PropertyValue(true));
  EXPECT_EQ(e.PropertyAt(4), PropertyValue("Uni Leipzig"));
}

TEST(EmbeddingTest, MergeAppendsAndRebasesPaths) {
  Embedding left;
  left.AppendId(10);
  left.AppendPath({5, 20, 7});
  left.AppendProperty(PropertyValue("Alice"));

  Embedding right;
  right.AppendPath({8, 9});
  right.AppendId(30);
  right.AppendProperty(PropertyValue("Bob"));

  Embedding merged = Embedding::Merge(left, right);
  EXPECT_EQ(merged.NumIdEntries(), 4);
  EXPECT_EQ(merged.IdAt(0), 10u);
  EXPECT_EQ(merged.PathAt(1), (std::vector<uint64_t>{5, 20, 7}));
  EXPECT_EQ(merged.PathAt(2), (std::vector<uint64_t>{8, 9}));  // rebased
  EXPECT_EQ(merged.IdAt(3), 30u);
  EXPECT_EQ(merged.NumProperties(), 2);
  EXPECT_EQ(merged.PropertyAt(0), PropertyValue("Alice"));
  EXPECT_EQ(merged.PropertyAt(1), PropertyValue("Bob"));
}

TEST(EmbeddingTest, MergeWithEmpty) {
  Embedding e;
  e.AppendId(1);
  e.AppendProperty(PropertyValue(int64_t{5}));
  Embedding empty;
  EXPECT_EQ(Embedding::Merge(e, empty), e);
  EXPECT_EQ(Embedding::Merge(empty, e), e);
}

TEST(EmbeddingTest, ContainsIdAt) {
  Embedding e;
  e.AppendId(10);
  e.AppendId(20);
  e.AppendPath({99});
  EXPECT_TRUE(e.ContainsIdAt(10, {0, 1}));
  EXPECT_TRUE(e.ContainsIdAt(20, {0, 1}));
  EXPECT_FALSE(e.ContainsIdAt(30, {0, 1}));
  // A path column never matches an id probe.
  EXPECT_FALSE(e.ContainsIdAt(99, {0, 1, 2}));
}

TEST(EmbeddingTest, PathContainsAlternation) {
  Embedding e;
  e.AppendId(1);
  e.AppendPath({5, 20, 7, 30, 9});  // edges 5,7,9; vertices 20,30
  EXPECT_TRUE(e.PathContains(5, {1}, /*edges=*/true));
  EXPECT_TRUE(e.PathContains(9, {1}, true));
  EXPECT_FALSE(e.PathContains(20, {1}, true));
  EXPECT_TRUE(e.PathContains(20, {1}, /*edges=*/false));
  EXPECT_TRUE(e.PathContains(30, {1}, false));
  EXPECT_FALSE(e.PathContains(5, {1}, false));
}

TEST(EmbeddingTest, WireFormatRoundTrip) {
  Embedding a;
  a.AppendId(10);
  a.AppendPath({5, 20, 7});
  a.AppendId(30);
  a.AppendProperty(PropertyValue("Alice"));
  a.AppendProperty(PropertyValue(int64_t{2014}));
  Embedding b;  // empty embedding round-trips too
  std::string wire;
  a.EncodeTo(&wire);
  b.EncodeTo(&wire);
  EXPECT_EQ(wire.size(), a.SerializedSize() + b.SerializedSize());

  size_t pos = 0;
  auto da = Embedding::DecodeFrom(wire, &pos);
  ASSERT_TRUE(da.ok()) << da.status();
  EXPECT_EQ(da.value(), a);
  EXPECT_EQ(da.value().NumProperties(), 2);
  EXPECT_EQ(da.value().PropertyAt(0), PropertyValue("Alice"));
  auto db = Embedding::DecodeFrom(wire, &pos);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value(), b);
  EXPECT_EQ(pos, wire.size());
}

TEST(EmbeddingTest, DecodeRejectsTruncatedWire) {
  Embedding a;
  a.AppendId(10);
  a.AppendProperty(PropertyValue("x"));
  std::string wire;
  a.EncodeTo(&wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    size_t pos = 0;
    const std::string truncated = wire.substr(0, cut);
    EXPECT_FALSE(Embedding::DecodeFrom(truncated, &pos).ok())
        << "cut at " << cut;
  }
}

TEST(EmbeddingTest, SerializedSizeGrowsWithContent) {
  Embedding small;
  small.AppendId(1);
  Embedding large;
  large.AppendId(1);
  large.AppendPath({1, 2, 3, 4, 5});
  large.AppendProperty(PropertyValue("some longer string value"));
  EXPECT_GT(large.SerializedSize(), small.SerializedSize());
}

TEST(EmbeddingTest, ToStringIsReadable) {
  Embedding e;
  e.AppendId(10);
  e.AppendPath({5, 20, 7});
  e.AppendId(30);
  e.AppendProperty(PropertyValue("Alice"));
  EXPECT_EQ(e.ToString(), "[10, path(5,20,7), 30 | Alice]");
}

// --- EmbeddingMetaData ------------------------------------------------------

TEST(MetaDataTest, ColumnsAssignSequentially) {
  EmbeddingMetaData meta;
  EXPECT_EQ(meta.AddIdColumn("p1", EntryType::kVertex), 0);
  EXPECT_EQ(meta.AddIdColumn("s", EntryType::kEdge), 1);
  EXPECT_EQ(meta.AddIdColumn("u", EntryType::kVertex), 2);
  EXPECT_EQ(meta.AddPropertyColumn("p1", "name"), 0);
  EXPECT_EQ(meta.AddPropertyColumn("u", "name"), 1);

  EXPECT_EQ(meta.IdColumn("p1"), 0);
  EXPECT_EQ(meta.IdColumn("u"), 2);
  EXPECT_EQ(meta.IdColumn("ghost"), -1);
  EXPECT_EQ(meta.PropertyColumn("u", "name"), 1);
  EXPECT_EQ(meta.PropertyColumn("u", "city"), -1);
  EXPECT_EQ(meta.TypeOf("s"), EntryType::kEdge);
}

TEST(MetaDataTest, ColumnsByType) {
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  meta.AddIdColumn("e", EntryType::kEdge);
  meta.AddIdColumn("b", EntryType::kVertex);
  meta.AddIdColumn("p", EntryType::kPath);
  EXPECT_EQ(meta.VertexColumns(), (std::vector<int>{0, 2}));
  EXPECT_EQ(meta.EdgeColumns(), (std::vector<int>{1}));
  EXPECT_EQ(meta.PathColumns(), (std::vector<int>{3}));
}

TEST(MetaDataTest, MergeShiftsRightColumns) {
  EmbeddingMetaData left;
  left.AddIdColumn("a", EntryType::kVertex);
  left.AddIdColumn("e", EntryType::kEdge);
  left.AddPropertyColumn("a", "name");

  EmbeddingMetaData right;
  right.AddIdColumn("b", EntryType::kVertex);
  right.AddPropertyColumn("b", "name");

  EmbeddingMetaData merged = EmbeddingMetaData::Merge(left, right);
  EXPECT_EQ(merged.IdColumn("a"), 0);
  EXPECT_EQ(merged.IdColumn("e"), 1);
  EXPECT_EQ(merged.IdColumn("b"), 2);
  EXPECT_EQ(merged.PropertyColumn("a", "name"), 0);
  EXPECT_EQ(merged.PropertyColumn("b", "name"), 1);
  EXPECT_EQ(merged.id_column_count(), 3);
  EXPECT_EQ(merged.property_column_count(), 2);
}

TEST(MetaDataTest, MergeSharedVariableKeepsLeftColumn) {
  EmbeddingMetaData left;
  left.AddIdColumn("u", EntryType::kVertex);
  EmbeddingMetaData right;
  right.AddIdColumn("p2", EntryType::kVertex);
  right.AddIdColumn("u", EntryType::kVertex);  // shared join variable

  EmbeddingMetaData merged = EmbeddingMetaData::Merge(left, right);
  EXPECT_EQ(merged.IdColumn("u"), 0);  // left binding wins
  EXPECT_EQ(merged.IdColumn("p2"), 1);
  // Physical width still includes the duplicate column.
  EXPECT_EQ(merged.id_column_count(), 3);
  // VertexColumns addresses distinct variables only (no duplicate check
  // against the same variable's second copy).
  EXPECT_EQ(merged.VertexColumns().size(), 2u);
}

TEST(MetaDataTest, ResolverReadsProjectedProperties) {
  EmbeddingMetaData meta;
  meta.AddIdColumn("p", EntryType::kVertex);
  meta.AddPropertyColumn("p", "name");
  Embedding e;
  e.AppendId(10);
  e.AppendProperty(PropertyValue("Alice"));
  const auto resolver = meta.MakeResolver(e);
  EXPECT_EQ(resolver("p", "name"), PropertyValue("Alice"));
  EXPECT_TRUE(resolver("p", "ghost").is_null());
  EXPECT_TRUE(resolver("q", "name").is_null());
}

}  // namespace
}  // namespace gradoop::query
