#include <gtest/gtest.h>

#include "epgm/properties.h"
#include "epgm/property_value.h"

namespace gradoop::epgm {
namespace {

TEST(PropertyValueTest, DefaultIsNull) {
  PropertyValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), PropertyValue::Type::kNull);
}

TEST(PropertyValueTest, TypedConstruction) {
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue(int64_t{42}).is_int());
  EXPECT_TRUE(PropertyValue(7).is_int());  // int promotes to int64
  EXPECT_TRUE(PropertyValue(3.5).is_double());
  EXPECT_TRUE(PropertyValue("abc").is_string());
  EXPECT_TRUE(PropertyValue(std::string("abc")).is_string());
  EXPECT_TRUE(PropertyValue(std::vector<uint64_t>{1, 2}).is_id_list());
}

TEST(PropertyValueTest, Accessors) {
  EXPECT_EQ(PropertyValue(int64_t{42}).int_value(), 42);
  EXPECT_DOUBLE_EQ(PropertyValue(2.5).double_value(), 2.5);
  EXPECT_EQ(PropertyValue("Alice").string_value(), "Alice");
  EXPECT_TRUE(PropertyValue(true).bool_value());
  EXPECT_EQ(PropertyValue(std::vector<uint64_t>{5, 20, 7}).id_list_value(),
            (std::vector<uint64_t>{5, 20, 7}));
}

TEST(PropertyValueTest, NumericEqualityCrossesTypes) {
  EXPECT_EQ(PropertyValue(int64_t{2}), PropertyValue(2.0));
  EXPECT_NE(PropertyValue(int64_t{2}), PropertyValue(2.5));
  EXPECT_NE(PropertyValue(int64_t{2}), PropertyValue("2"));
}

TEST(PropertyValueTest, CompareNumeric) {
  EXPECT_EQ(PropertyValue(int64_t{1}).Compare(PropertyValue(int64_t{2})), -1);
  EXPECT_EQ(PropertyValue(int64_t{2}).Compare(PropertyValue(int64_t{2})), 0);
  EXPECT_EQ(PropertyValue(3.5).Compare(PropertyValue(int64_t{3})), 1);
}

TEST(PropertyValueTest, CompareStrings) {
  EXPECT_EQ(PropertyValue("Alice").Compare(PropertyValue("Bob")), -1);
  EXPECT_EQ(PropertyValue("Bob").Compare(PropertyValue("Bob")), 0);
}

TEST(PropertyValueTest, IncomparableTypesReturnNullopt) {
  EXPECT_FALSE(PropertyValue("x").Compare(PropertyValue(int64_t{1})));
  EXPECT_FALSE(PropertyValue().Compare(PropertyValue(int64_t{1})));
  EXPECT_FALSE(PropertyValue(std::vector<uint64_t>{1})
                   .Compare(PropertyValue(std::vector<uint64_t>{1})));
}

TEST(PropertyValueTest, EncodeDecodeRoundTrip) {
  const std::vector<PropertyValue> values = {
      PropertyValue::Null(),
      PropertyValue(true),
      PropertyValue(false),
      PropertyValue(int64_t{-12345}),
      PropertyValue(int64_t{1} << 60),
      PropertyValue(3.14159),
      PropertyValue(""),
      PropertyValue("Uni Leipzig"),
      PropertyValue(std::vector<uint64_t>{}),
      PropertyValue(std::vector<uint64_t>{5, 20, 7}),
  };
  std::string buffer;
  for (const PropertyValue& v : values) v.EncodeTo(&buffer);
  size_t pos = 0;
  for (const PropertyValue& v : values) {
    auto decoded = PropertyValue::DecodeFrom(buffer, &pos);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded.value(), v);
  }
  EXPECT_EQ(pos, buffer.size());
}

TEST(PropertyValueTest, SerializedSizeMatchesEncoding) {
  for (const PropertyValue& v :
       {PropertyValue::Null(), PropertyValue(true), PropertyValue(int64_t{7}),
        PropertyValue(1.5), PropertyValue("hello"),
        PropertyValue(std::vector<uint64_t>{1, 2, 3})}) {
    std::string buffer;
    v.EncodeTo(&buffer);
    EXPECT_EQ(buffer.size(), v.SerializedSize());
  }
}

TEST(PropertyValueTest, DecodeRejectsTruncation) {
  PropertyValue v("hello world");
  std::string buffer;
  v.EncodeTo(&buffer);
  buffer.resize(buffer.size() - 3);
  size_t pos = 0;
  EXPECT_FALSE(PropertyValue::DecodeFrom(buffer, &pos).ok());
}

TEST(PropertyValueTest, ParseTyped) {
  auto s = PropertyValue::ParseTyped("string", "Alice");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), PropertyValue("Alice"));

  auto l = PropertyValue::ParseTyped("long", "-42");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l.value(), PropertyValue(int64_t{-42}));

  auto d = PropertyValue::ParseTyped("double", "2.5");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), PropertyValue(2.5));

  auto b = PropertyValue::ParseTyped("boolean", "true");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), PropertyValue(true));

  EXPECT_FALSE(PropertyValue::ParseTyped("long", "abc").ok());
  EXPECT_FALSE(PropertyValue::ParseTyped("boolean", "yes").ok());
  EXPECT_FALSE(PropertyValue::ParseTyped("blob", "x").ok());
}

TEST(PropertyValueTest, ToStringForms) {
  EXPECT_EQ(PropertyValue::Null().ToString(), "NULL");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(int64_t{42}).ToString(), "42");
  EXPECT_EQ(PropertyValue("x").ToString(), "x");
  EXPECT_EQ(PropertyValue(std::vector<uint64_t>{1, 2}).ToString(), "[1,2]");
}

TEST(PropertyValueTest, HashDistinguishesValues) {
  EXPECT_NE(PropertyValue("a").Hash(), PropertyValue("b").Hash());
  EXPECT_EQ(PropertyValue("a").Hash(), PropertyValue("a").Hash());
  EXPECT_NE(PropertyValue(int64_t{1}).Hash(), PropertyValue(int64_t{2}).Hash());
}

// --- Properties --------------------------------------------------------

TEST(PropertiesTest, SetGetHas) {
  Properties p;
  EXPECT_TRUE(p.empty());
  p.Set("name", "Alice");
  p.Set("age", int64_t{30});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.Has("name"));
  EXPECT_EQ(p.Get("name"), PropertyValue("Alice"));
  EXPECT_EQ(p.Get("age"), PropertyValue(int64_t{30}));
}

TEST(PropertiesTest, MissingKeyIsNull) {
  Properties p;
  EXPECT_FALSE(p.Has("ghost"));
  EXPECT_TRUE(p.Get("ghost").is_null());  // κ returns ε
}

TEST(PropertiesTest, SetOverwrites) {
  Properties p;
  p.Set("k", int64_t{1});
  p.Set("k", int64_t{2});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.Get("k"), PropertyValue(int64_t{2}));
}

TEST(PropertiesTest, Remove) {
  Properties p{{"a", 1}, {"b", 2}};
  EXPECT_TRUE(p.Remove("a"));
  EXPECT_FALSE(p.Remove("a"));
  EXPECT_EQ(p.size(), 1u);
}

TEST(PropertiesTest, InitializerList) {
  Properties p{{"name", "Bob"}, {"yob", int64_t{1984}}};
  EXPECT_EQ(p.Get("name"), PropertyValue("Bob"));
  EXPECT_EQ(p.Get("yob"), PropertyValue(int64_t{1984}));
}

TEST(PropertiesTest, SerializedSizeGrowsWithContent) {
  Properties small{{"a", 1}};
  Properties large{{"a", 1}, {"long_key_name", "a rather long value"}};
  EXPECT_GT(large.SerializedSize(), small.SerializedSize());
}

}  // namespace
}  // namespace gradoop::epgm
