#include <gtest/gtest.h>

#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"

namespace gradoop {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Properties;
using epgm::Vertex;
using query::CypherEngine;
using query::MorphismSetting;

// The paper's Figure 1 social network: persons, universities, cities.
LogicalGraph Figure1Graph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices;
  vertices.emplace_back(10, "Person",
                        Properties{{"name", "Alice"}, {"gender", "female"}});
  vertices.emplace_back(20, "Person",
                        Properties{{"name", "Eve"},
                                   {"gender", "female"},
                                   {"yob", int64_t{1984}}});
  vertices.emplace_back(30, "Person",
                        Properties{{"name", "Bob"}, {"gender", "male"}});
  vertices.emplace_back(40, "University",
                        Properties{{"name", "Uni Leipzig"}});
  vertices.emplace_back(50, "City", Properties{{"name", "Leipzig"}});

  std::vector<Edge> edges;
  edges.emplace_back(1, "studyAt", 10, 40,
                     Properties{{"classYear", int64_t{2015}}});
  edges.emplace_back(2, "studyAt", 30, 40,
                     Properties{{"classYear", int64_t{2014}}});
  edges.emplace_back(3, "studyAt", 20, 40,
                     Properties{{"classYear", int64_t{2015}}});
  edges.emplace_back(4, "isLocatedIn", 40, 50);
  edges.emplace_back(5, "knows", 10, 20);
  edges.emplace_back(6, "knows", 20, 10);
  edges.emplace_back(7, "knows", 20, 30);
  edges.emplace_back(8, "knows", 30, 20);
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(100, "Community"),
                                   std::move(vertices), std::move(edges));
}

class EngineSmokeTest : public ::testing::Test {
 protected:
  EngineSmokeTest()
      : ctx_(dataflow::MakeContext()), engine_(Figure1Graph(ctx_)) {}

  dataflow::ExecutionContextPtr ctx_;
  CypherEngine engine_;
};

TEST_F(EngineSmokeTest, SingleVertexScan) {
  auto count = engine_.Count("MATCH (p:Person) RETURN *");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value(), 3u);
}

TEST_F(EngineSmokeTest, EdgePattern) {
  auto count = engine_.Count(
      "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value(), 3u);
}

TEST_F(EngineSmokeTest, PropertyPredicate) {
  auto count = engine_.Count(
      "MATCH (p:Person)-[s:studyAt]->(u:University) "
      "WHERE s.classYear > 2014 RETURN p.name, u.name");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.value(), 2u);  // Alice and Eve (2015)
}

TEST_F(EngineSmokeTest, PaperExampleQuery) {
  // The Section 2.3 query: pairs of persons at Uni Leipzig with different
  // genders, knowing each other within three knows hops.
  auto count = engine_.Count(
      "MATCH (p1:Person)-[s:studyAt]->(u:University), "
      "(p2:Person)-[:studyAt]->(u), "
      "(p1)-[e:knows*1..3]->(p2) "
      "WHERE p1.gender <> p2.gender "
      "AND u.name = 'Uni Leipzig' "
      "AND s.classYear > 2014 RETURN *");
  ASSERT_TRUE(count.ok()) << count.status();
  // p1 must be Alice or Eve (classYear 2015 > 2014); p2 must be Bob
  // (different gender). Distinct paths (edge isomorphism): Alice-Eve-Bob;
  // Eve-Bob; Eve-Alice-Eve-Bob (vertex homomorphism allows the revisit).
  EXPECT_EQ(count.value(), 3u);
}

TEST_F(EngineSmokeTest, VariableLengthPath) {
  auto count = engine_.Count(
      "MATCH (a:Person)-[e:knows*1..2]->(b:Person) "
      "WHERE a.name = 'Alice' RETURN *");
  ASSERT_TRUE(count.ok()) << count.status();
  // Alice->Eve (1 hop); Alice->Eve->Bob (2 hops); Alice->Eve->Alice is
  // rejected: the end may not revisit the path start under any setting
  // that... (vertex homo allows it!) Default Neo4j semantics: vertex
  // homomorphism, edge isomorphism: Alice->Eve->Alice IS a valid walk.
  EXPECT_EQ(count.value(), 3u);
}

TEST_F(EngineSmokeTest, MatchCollection) {
  auto matches = engine_.Match(
      "MATCH (p:Person)-[:knows]->(q:Person) RETURN p.name, q.name");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches.value().NumGraphs(), 4u);
}

TEST_F(EngineSmokeTest, ExplainProducesPlan) {
  auto plan = engine_.Explain(
      "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan.value().find("JoinEmbeddings"), std::string::npos);
}

}  // namespace
}  // namespace gradoop
