// Golden tests for the semantic analyzer's diagnostics: one query per
// diagnostic code, pinning the code, severity, and 1-based line:column of
// the span. These are part of the stable-code contract — if one of these
// breaks, either the analyzer regressed or docs/diagnostics.md must be
// updated in the same change.
#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "cypher/parser.h"
#include "epgm/logical_graph.h"
#include "query/graph_statistics.h"

namespace gradoop::analysis {
namespace {

using query::MorphismSetting;

AnalysisResult Analyze(const std::string& query,
                       const AnalyzerOptions& options = {}) {
  auto ast = cypher::ParseCypher(query);
  EXPECT_TRUE(ast.ok()) << ast.status();
  if (!ast.ok()) return {};
  return AnalyzeQuery(ast.value(), options);
}

// Returns the first diagnostic with `code`, or nullptr.
const Diagnostic* Find(const AnalysisResult& result, const char* code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string AllCodes(const AnalysisResult& result) {
  std::string out;
  for (const Diagnostic& d : result.diagnostics) {
    if (!out.empty()) out += " ";
    out += d.code + "@" + d.span.ToString();
  }
  return out.empty() ? "<none>" : out;
}

// Asserts one diagnostic of `code` exists with the given severity and
// location, and returns it for further message checks.
const Diagnostic* ExpectDiagnostic(const AnalysisResult& result,
                                   const char* code, Severity severity,
                                   const std::string& location) {
  const Diagnostic* d = Find(result, code);
  EXPECT_NE(d, nullptr) << "missing " << code << "; got " << AllCodes(result);
  if (d == nullptr) return nullptr;
  EXPECT_EQ(d->severity, severity) << d->ToString();
  EXPECT_EQ(d->span.ToString(), location) << d->ToString();
  return d;
}

// --- Errors (GQL0xx): the engine refuses to execute these. ---

TEST(DiagnosticsGolden, Gql001UndefinedVariable) {
  auto r = Analyze("MATCH (a) WHERE b.x = 1 RETURN a.x");
  ExpectDiagnostic(r, kCodeUndefinedVariable, Severity::kError, "1:17");
  EXPECT_TRUE(r.HasErrors());
}

TEST(DiagnosticsGolden, Gql001UndefinedInReturn) {
  auto r = Analyze("MATCH (a) RETURN q.x");
  ExpectDiagnostic(r, kCodeUndefinedVariable, Severity::kError, "1:18");
}

TEST(DiagnosticsGolden, Gql002VariableKindConflict) {
  auto r = Analyze("MATCH (a)-[a]->(b) RETURN *");
  ExpectDiagnostic(r, kCodeVariableKindConflict, Severity::kError, "1:12");
}

TEST(DiagnosticsGolden, Gql003EdgeRebound) {
  auto r = Analyze("MATCH (a)-[e]->(b), (b)-[e]->(c) RETURN *");
  ExpectDiagnostic(r, kCodeEdgeRebound, Severity::kError, "1:26");
}

TEST(DiagnosticsGolden, Gql004InvalidBounds) {
  auto r = Analyze("MATCH (a)-[e*3..1]->(b) RETURN *");
  ExpectDiagnostic(r, kCodeInvalidBounds, Severity::kError, "1:13");
}

TEST(DiagnosticsGolden, Gql005ElementOrdering) {
  auto r = Analyze("MATCH (a)-[e]->(b) WHERE a < b RETURN *");
  ExpectDiagnostic(r, kCodeElementMisuse, Severity::kError, "1:26");
}

TEST(DiagnosticsGolden, Gql005HomomorphicEquality) {
  // Under Neo4j semantics vertices are homomorphic, so `a = b` is not a
  // statically known constant and the engine cannot execute it.
  AnalyzerOptions options;
  options.semantics = MorphismSetting::Neo4j();
  auto r = Analyze("MATCH (a)-[e]->(b) WHERE a = b RETURN *", options);
  ExpectDiagnostic(r, kCodeElementMisuse, Severity::kError, "1:26");
}

TEST(DiagnosticsGolden, Gql006OrderingAgainstBoolean) {
  auto r = Analyze("MATCH (a) WHERE a.x < true RETURN a.x");
  ExpectDiagnostic(r, kCodeIllTypedComparison, Severity::kError, "1:17");
}

// --- Warnings (GQL1xx): the engine executes these. ---

TEST(DiagnosticsGolden, Gql101UnusedVariable) {
  auto r = Analyze("MATCH (a)-[e]->(b) RETURN a.x, b.x");
  ExpectDiagnostic(r, kCodeUnusedVariable, Severity::kWarning, "1:12");
  EXPECT_FALSE(r.HasErrors());
}

TEST(DiagnosticsGolden, Gql102UnknownLabel) {
  epgm::LogicalGraph graph = epgm::LogicalGraph::FromVectors(
      dataflow::MakeContext(), epgm::GraphHead(1, "G"),
      {epgm::Vertex(1, "Person"), epgm::Vertex(2, "Tag")},
      {epgm::Edge(10, "knows", 1, 2)});
  query::GraphStatistics stats = query::GraphStatistics::Compute(graph);
  AnalyzerOptions options;
  options.statistics = &stats;
  auto r = Analyze("MATCH (p:Persn) RETURN p.x", options);
  const Diagnostic* d =
      ExpectDiagnostic(r, kCodeUnknownLabel, Severity::kWarning, "1:7");
  ASSERT_NE(d, nullptr);
  // The nearest-label suggestion names the real label.
  EXPECT_NE(d->message.find("Person"), std::string::npos) << d->message;
  EXPECT_FALSE(r.unsatisfiable);  // unknown label is a lint, not unsat
}

TEST(DiagnosticsGolden, Gql103LabelContradiction) {
  auto r = Analyze("MATCH (a:Person), (a:Tag) RETURN a.x");
  ExpectDiagnostic(r, kCodeLabelContradiction, Severity::kWarning, "1:19");
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(DiagnosticsGolden, Gql104PropertyContradiction) {
  auto r = Analyze("MATCH (a) WHERE a.x > 5 AND a.x < 3 RETURN a.x");
  ExpectDiagnostic(r, kCodePropertyContradiction, Severity::kWarning, "1:29");
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(DiagnosticsGolden, Gql104PatternVersusWhere) {
  auto r = Analyze("MATCH (a {x: 1}) WHERE a.x = 2 RETURN a.x");
  const Diagnostic* d = Find(r, kCodePropertyContradiction);
  ASSERT_NE(d, nullptr) << AllCodes(r);
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(DiagnosticsGolden, Gql105ConstantWhere) {
  auto r = Analyze("MATCH (a) WHERE true RETURN a.x");
  ExpectDiagnostic(r, kCodeConstantWhere, Severity::kWarning, "1:17");
  EXPECT_FALSE(r.unsatisfiable);  // constant TRUE just drops the filter
}

TEST(DiagnosticsGolden, Gql105ConstantFalseIsUnsat) {
  auto r = Analyze("MATCH (a) WHERE false RETURN a.x");
  ExpectDiagnostic(r, kCodeConstantWhere, Severity::kWarning, "1:17");
  EXPECT_TRUE(r.unsatisfiable);
}

TEST(DiagnosticsGolden, Gql106ConstantElementEquality) {
  AnalyzerOptions options;
  options.semantics = MorphismSetting::FullIsomorphism();
  auto r = Analyze("MATCH (a)-[e]->(b) WHERE a = b RETURN a.x, b.x", options);
  ExpectDiagnostic(r, kCodeConstantElementEquality, Severity::kWarning,
                   "1:26");
  EXPECT_TRUE(r.unsatisfiable);  // distinct vars never equal under iso
}

TEST(DiagnosticsGolden, Gql107CartesianProduct) {
  auto r = Analyze("MATCH (a), (b) RETURN a.x, b.x");
  ExpectDiagnostic(r, kCodeCartesianProduct, Severity::kWarning, "1:12");
}

TEST(DiagnosticsGolden, Gql107SuppressedByWherePredicate) {
  // A cross-path WHERE comparison joins the components, so no warning.
  auto r = Analyze("MATCH (a), (b) WHERE a.x = b.x RETURN a.x, b.x");
  EXPECT_EQ(Find(r, kCodeCartesianProduct), nullptr) << AllCodes(r);
}

TEST(DiagnosticsGolden, Gql108ConstantComparison) {
  auto r = Analyze("MATCH (a) WHERE 1 < 2 AND a.x = 0 RETURN a.x");
  ExpectDiagnostic(r, kCodeConstantComparison, Severity::kWarning, "1:17");
  // The fold leaves only the dynamic conjunct, so no GQL105.
  EXPECT_EQ(Find(r, kCodeConstantWhere), nullptr) << AllCodes(r);
}

// --- Rendering. ---

TEST(DiagnosticsGolden, ToStringSingleLineForm) {
  auto r = Analyze("MATCH (a)-[e*3..1]->(b) RETURN *");
  const Diagnostic* d = Find(r, kCodeInvalidBounds);
  ASSERT_NE(d, nullptr);
  const std::string s = d->ToString();
  EXPECT_EQ(s.find("GQL004 error: "), 0u) << s;
  EXPECT_NE(s.find(" at 1:13"), std::string::npos) << s;
}

TEST(DiagnosticsGolden, RenderedCaretPointsAtBounds) {
  const std::string query = "MATCH (a)-[e*3..1]->(b) RETURN *";
  auto r = Analyze(query);
  const Diagnostic* d = Find(r, kCodeInvalidBounds);
  ASSERT_NE(d, nullptr);
  const std::string rendered = RenderDiagnostic(*d, query);
  // Source line with gutter, then a caret underline at column 13
  // (the `*` opening the bounds) spanning `*3..1`.
  EXPECT_NE(rendered.find("  1 | MATCH (a)-[e*3..1]->(b) RETURN *"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("    |             ^~~~~"), std::string::npos)
      << rendered;
}

TEST(DiagnosticsGolden, RenderedMultiLineQueryPicksTheRightLine) {
  const std::string query = "MATCH (a)\nWHERE b.x = 1\nRETURN a.x";
  auto r = Analyze(query);
  const Diagnostic* d = Find(r, kCodeUndefinedVariable);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.ToString(), "2:7");
  const std::string rendered = RenderDiagnostic(*d, query);
  EXPECT_NE(rendered.find("  2 | WHERE b.x = 1"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("    |       ^"), std::string::npos) << rendered;
}

TEST(DiagnosticsGolden, DiagnosticsSortedBySourcePosition) {
  auto r = Analyze("MATCH (a)-[e*3..1]->(b) WHERE q.x = 1 RETURN *");
  ASSERT_GE(r.diagnostics.size(), 2u) << AllCodes(r);
  for (size_t i = 1; i < r.diagnostics.size(); ++i) {
    EXPECT_LE(r.diagnostics[i - 1].span.offset, r.diagnostics[i].span.offset);
  }
}

}  // namespace
}  // namespace gradoop::analysis
