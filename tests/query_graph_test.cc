#include <gtest/gtest.h>

#include "cypher/parser.h"
#include "cypher/query_graph.h"

namespace gradoop::cypher {
namespace {

QueryGraph MustBuild(const std::string& text) {
  auto ast = ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return qg.ok() ? std::move(qg).value() : QueryGraph{};
}

Status BuildError(const std::string& text) {
  auto ast = ParseCypher(text);
  if (!ast.ok()) return ast.status();
  auto qg = QueryGraph::Build(ast.value());
  return qg.ok() ? Status::Ok() : qg.status();
}

TEST(QueryGraphTest, SimpleChain) {
  QueryGraph qg = MustBuild("MATCH (a:Person)-[e:knows]->(b:Person) RETURN *");
  ASSERT_EQ(qg.vertices().size(), 2u);
  ASSERT_EQ(qg.edges().size(), 1u);
  const QueryEdge& e = qg.edges()[0];
  EXPECT_EQ(qg.vertices()[e.source].variable, "a");
  EXPECT_EQ(qg.vertices()[e.target].variable, "b");
  EXPECT_FALSE(e.IsVariableLength());
}

TEST(QueryGraphTest, IncomingEdgeFlipsSourceTarget) {
  QueryGraph qg =
      MustBuild("MATCH (p:Person)<-[:hasCreator]-(m:Comment) RETURN *");
  const QueryEdge& e = qg.edges()[0];
  EXPECT_EQ(qg.vertices()[e.source].variable, "m");
  EXPECT_EQ(qg.vertices()[e.target].variable, "p");
}

TEST(QueryGraphTest, SharedVariablesMergeAcrossPaths) {
  QueryGraph qg = MustBuild(
      "MATCH (p1:Person)-[:knows]->(p2:Person), "
      "(p2)<-[:hasCreator]-(c:Comment) RETURN *");
  EXPECT_EQ(qg.vertices().size(), 3u);  // p1, p2, c — p2 merged
  EXPECT_EQ(qg.edges().size(), 2u);
}

TEST(QueryGraphTest, LabelIntersectionOnMerge) {
  QueryGraph qg = MustBuild(
      "MATCH (m:Comment|Post)-[:x]->(a), (m:Post)-[:y]->(b) RETURN *");
  const QueryVertex* m = qg.FindVertex("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->labels, (std::vector<std::string>{"Post"}));
  EXPECT_FALSE(qg.unsatisfiable());
}

TEST(QueryGraphTest, ContradictoryLabelsAreUnsatisfiable) {
  QueryGraph qg =
      MustBuild("MATCH (m:Comment)-[:x]->(a), (m:Post)-[:y]->(b) RETURN *");
  EXPECT_TRUE(qg.unsatisfiable());
}

TEST(QueryGraphTest, PropertyMapBecomesElementPredicate) {
  QueryGraph qg = MustBuild("MATCH (p:Person {name: 'Alice'}) RETURN *");
  const auto preds = qg.ElementPredicates("p");
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0].ToString(), "(p.name = 'Alice')");
}

TEST(QueryGraphTest, PredicateClassification) {
  QueryGraph qg = MustBuild(
      "MATCH (a:X)-[e:r]->(b:Y) "
      "WHERE a.v = 1 AND a.w > 2 AND a.p <> b.p RETURN *");
  EXPECT_EQ(qg.ElementPredicates("a").size(), 2u);
  EXPECT_EQ(qg.ElementPredicates("b").size(), 0u);
  ASSERT_EQ(qg.CrossPredicates().size(), 1u);
  EXPECT_EQ(qg.CrossPredicates()[0].Variables(),
            (std::set<std::string>{"a", "b"}));
}

TEST(QueryGraphTest, DisjunctionSpanningVariablesIsCross) {
  QueryGraph qg = MustBuild(
      "MATCH (a)-[e]->(b) WHERE a.x = 1 OR b.y = 2 RETURN *");
  EXPECT_TRUE(qg.ElementPredicates("a").empty());
  EXPECT_EQ(qg.CrossPredicates().size(), 1u);
}

TEST(QueryGraphTest, NeededPropertiesFromWhereAndReturn) {
  QueryGraph qg = MustBuild(
      "MATCH (p:Person)-[s:studyAt]->(u) "
      "WHERE s.classYear > 2014 RETURN p.name, u.name");
  EXPECT_EQ(qg.NeededProperties("p"), (std::set<std::string>{"name"}));
  EXPECT_EQ(qg.NeededProperties("s"), (std::set<std::string>{"classYear"}));
  EXPECT_EQ(qg.NeededProperties("u"), (std::set<std::string>{"name"}));
}

TEST(QueryGraphTest, VariableLengthBoundsPreserved) {
  QueryGraph qg = MustBuild("MATCH (a)-[e:knows*2..5]->(b) RETURN *");
  const QueryEdge& e = qg.edges()[0];
  EXPECT_TRUE(e.IsVariableLength());
  EXPECT_EQ(e.lower_bound, 2);
  EXPECT_EQ(e.upper_bound, 5);
}

TEST(QueryGraphTest, SelfLoopEdge) {
  QueryGraph qg = MustBuild("MATCH (a:Person)-[e:likes]->(a) RETURN *");
  EXPECT_EQ(qg.vertices().size(), 1u);
  const QueryEdge& e = qg.edges()[0];
  EXPECT_EQ(e.source, e.target);
}

TEST(QueryGraphTest, MatchesLabelAlternation) {
  QueryVertex v;
  v.labels = {"Comment", "Post"};
  EXPECT_TRUE(v.MatchesLabel("Comment"));
  EXPECT_TRUE(v.MatchesLabel("Post"));
  EXPECT_FALSE(v.MatchesLabel("Person"));
  QueryVertex unlabeled;
  EXPECT_TRUE(unlabeled.MatchesLabel("Anything"));
}

TEST(QueryGraphErrorTest, EdgeVariableReuse) {
  EXPECT_EQ(BuildError("MATCH (a)-[e]->(b), (c)-[e]->(d) RETURN *").code(),
            StatusCode::kParseError);
}

TEST(QueryGraphErrorTest, VertexEdgeVariableClash) {
  EXPECT_EQ(BuildError("MATCH (x)-[e]->(b), (c)-[x]->(d) RETURN *").code(),
            StatusCode::kParseError);
}

TEST(QueryGraphErrorTest, UnboundPredicateVariable) {
  EXPECT_EQ(BuildError("MATCH (a) WHERE ghost.x = 1 RETURN *").code(),
            StatusCode::kParseError);
}

TEST(QueryGraphErrorTest, UnboundReturnVariable) {
  EXPECT_EQ(BuildError("MATCH (a) RETURN ghost.x").code(),
            StatusCode::kParseError);
}

TEST(QueryGraphErrorTest, PredicateOnVariableLengthEdge) {
  EXPECT_EQ(
      BuildError("MATCH (a)-[e:knows*1..3]->(b) WHERE e.x = 1 RETURN *")
          .code(),
      StatusCode::kUnsupported);
}

TEST(QueryGraphErrorTest, UndirectedVariableLength) {
  EXPECT_EQ(BuildError("MATCH (a)-[e:knows*1..3]-(b) RETURN *").code(),
            StatusCode::kUnsupported);
}

TEST(QueryGraphTest, ToStringMentionsStructure) {
  QueryGraph qg = MustBuild("MATCH (a:Person)-[e:knows*1..3]->(b) RETURN *");
  const std::string s = qg.ToString();
  EXPECT_NE(s.find("a:Person"), std::string::npos);
  EXPECT_NE(s.find("*1..3"), std::string::npos);
}

}  // namespace
}  // namespace gradoop::cypher
