// Negative compile check for the thread-safety annotations: this TU
// touches a GUARDED_BY field without holding its mutex, so a Clang
// toolchain MUST reject it under -Wthread-safety -Werror. ci/check.sh's
// `concurrency` stage compiles it with
//
//   clang++ -fsyntax-only -Wthread-safety -Werror -I src \
//       tests/compile_fail/guarded_by_violation.cc
//
// and fails the gate if the compile unexpectedly SUCCEEDS — proving the
// annotation machinery actually rejects unguarded access, not just that
// clean code happens to pass. Never added to any CMake target.
//
// Guard the seeded bug behind the macro the stage defines, so opening
// this file in an IDE with a full compile doesn't drown it in red:
// without GRADOOP_EXPECT_THREAD_SAFETY_ERROR the TU is correct.
#include "common/thread_annotations.h"

namespace fixture {

class GuardedCounter {
 public:
  void Add(int v) {
    gradoop::common::MutexLock lock(mu_);
    value_ += v;
  }

#ifdef GRADOOP_EXPECT_THREAD_SAFETY_ERROR
  // Seeded bug: reads value_ with mu_ not held. -Wthread-safety reports
  // "reading variable 'value_' requires holding mutex 'mu_'".
  int Peek() const { return value_; }
#endif

 private:
  mutable gradoop::common::Mutex mu_{gradoop::common::LockRank::kDataflow,
                                     "fixture.guarded_counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
