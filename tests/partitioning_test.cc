// Partitioning-property analysis: the lattice and transfer functions,
// the shuffle-elision proof obligations, the runtime audit that checks
// the proofs record-by-record, the verifier that re-derives every claim,
// and the pinned end-to-end regression the analysis exists for — two
// consecutive same-key joins executing with strictly fewer shuffle bytes
// than the analysis-disabled run while producing identical embeddings.
#include "query/exec/partitioning.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/plan_verifier.h"
#include "cypher/parser.h"
#include "dataflow/dataset.h"
#include "dataflow/partitioning_audit.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/exec/plan_compiler.h"
#include "query/planner.h"

namespace gradoop::query {
namespace {

using dataflow::CountMisplacedRecords;
using dataflow::PartitioningAuditStats;
using exec::DeriveLogicalPartitioning;
using exec::ElidesShuffle;
using exec::PartitioningProperty;
using exec::PartitionKeyKind;
using exec::ValueKeySideTokens;

// --- lattice elements and rendering -----------------------------------

TEST(PartitioningPropertyTest, ToStringRendersEveryElement) {
  EXPECT_EQ(PartitioningProperty::Random().ToString(), "random");
  EXPECT_EQ(PartitioningProperty::Replicated().ToString(), "replicated");
  EXPECT_EQ(PartitioningProperty::Singleton().ToString(), "singleton");
  EXPECT_EQ(PartitioningProperty::HashOnVariables({"a", "b"}).ToString(),
            "hash(a,b)");
  EXPECT_EQ(PartitioningProperty::HashOnValues({"a.x", "b.y"}).ToString(),
            "hash-values(a.x,b.y)");
}

TEST(PartitioningPropertyTest, EqualityIsStructural) {
  EXPECT_EQ(PartitioningProperty::HashOnVariables({"a"}),
            PartitioningProperty::HashOnVariables({"a"}));
  EXPECT_FALSE(PartitioningProperty::HashOnVariables({"a"}) ==
               PartitioningProperty::HashOnValues({"a"}));
  EXPECT_FALSE(PartitioningProperty::Random() ==
               PartitioningProperty::Singleton());
}

// --- the elision proof obligation -------------------------------------

TEST(ElidesShuffleTest, RequiresExactKeySequenceInMatchingDomain) {
  const auto hash_a = PartitioningProperty::HashOnVariables({"a"});
  const auto hash_ab = PartitioningProperty::HashOnVariables({"a", "b"});

  EXPECT_TRUE(ElidesShuffle(hash_a, PartitionKeyKind::kIdColumns, {"a"}));
  EXPECT_TRUE(
      ElidesShuffle(hash_ab, PartitionKeyKind::kIdColumns, {"a", "b"}));

  // Key order is part of the hash bytes: hash(a,b) != hash(b,a).
  EXPECT_FALSE(
      ElidesShuffle(hash_ab, PartitionKeyKind::kIdColumns, {"b", "a"}));
  // A prefix or superset of the key is a different key.
  EXPECT_FALSE(ElidesShuffle(hash_ab, PartitionKeyKind::kIdColumns, {"a"}));
  EXPECT_FALSE(
      ElidesShuffle(hash_a, PartitionKeyKind::kIdColumns, {"a", "b"}));
  // Id-column keys never satisfy value-key requirements or vice versa —
  // the key bytes differ even when the tokens collide textually.
  EXPECT_FALSE(ElidesShuffle(hash_a, PartitionKeyKind::kPropertyValues,
                             {"a"}));
  EXPECT_FALSE(ElidesShuffle(PartitioningProperty::HashOnValues({"a.x"}),
                             PartitionKeyKind::kIdColumns, {"a.x"}));
  EXPECT_TRUE(ElidesShuffle(PartitioningProperty::HashOnValues({"a.x"}),
                            PartitionKeyKind::kPropertyValues, {"a.x"}));
}

TEST(ElidesShuffleTest, NonHashElementsNeverElide) {
  for (const auto& p :
       {PartitioningProperty::Random(), PartitioningProperty::Replicated(),
        PartitioningProperty::Singleton()}) {
    EXPECT_FALSE(ElidesShuffle(p, PartitionKeyKind::kIdColumns, {"a"}))
        << p.ToString();
  }
  // The empty (cartesian) key never elides, whatever the input claims.
  EXPECT_FALSE(ElidesShuffle(PartitioningProperty::HashOnVariables({}),
                             PartitionKeyKind::kIdColumns, {}));
  EXPECT_FALSE(ElidesShuffle(PartitioningProperty::Singleton(),
                             PartitionKeyKind::kIdColumns, {}));
}

TEST(ValueKeySideTokensTest, SplitsDescriptionsAtFirstEquals) {
  const std::vector<std::string> keys = {"a.x=b.y", "c.z=d.w"};
  EXPECT_EQ(ValueKeySideTokens(keys, /*right_side=*/false),
            (std::vector<std::string>{"a.x", "c.z"}));
  EXPECT_EQ(ValueKeySideTokens(keys, /*right_side=*/true),
            (std::vector<std::string>{"b.y", "d.w"}));
}

// --- transfer functions over logical plans ----------------------------

PlanNodePtr ScanNode() {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kScanVertices;
  n->element_index = 0;
  return n;
}

PlanNodePtr JoinNode(PlanNodePtr left, PlanNodePtr right,
                     std::vector<std::string> on,
                     dataflow::JoinStrategy strategy) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  n->join_variables = std::move(on);
  n->join_strategy = strategy;
  return n;
}

PlanNodePtr FilterNode(PlanNodePtr child) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanNode::Kind::kFilter;
  n->left = std::move(child);
  return n;
}

TEST(DeriveLogicalPartitioningTest, TransferFunctions) {
  // Leaves produce no invariant.
  EXPECT_EQ(DeriveLogicalPartitioning(*ScanNode()),
            PartitioningProperty::Random());

  // A repartition join leaves its output hash-partitioned on the key.
  auto join = JoinNode(ScanNode(), ScanNode(), {"a"},
                       dataflow::JoinStrategy::kRepartition);
  EXPECT_EQ(DeriveLogicalPartitioning(*join),
            PartitioningProperty::HashOnVariables({"a"}));

  // Filters keep records in place, so the property flows through.
  EXPECT_EQ(DeriveLogicalPartitioning(*FilterNode(join)),
            PartitioningProperty::HashOnVariables({"a"}));

  // A broadcast join leaves the probe (left) side's layout untouched.
  auto broadcast = JoinNode(join, ScanNode(), {"a"},
                            dataflow::JoinStrategy::kBroadcast);
  EXPECT_EQ(DeriveLogicalPartitioning(*broadcast),
            PartitioningProperty::HashOnVariables({"a"}));
  auto broadcast_over_scan = JoinNode(ScanNode(), ScanNode(), {"a"},
                                      dataflow::JoinStrategy::kBroadcast);
  EXPECT_EQ(DeriveLogicalPartitioning(*broadcast_over_scan),
            PartitioningProperty::Random());

  // A cartesian repartition join hashes the empty key: everything lands
  // in one partition.
  auto cartesian = JoinNode(ScanNode(), ScanNode(), {},
                            dataflow::JoinStrategy::kRepartition);
  EXPECT_EQ(DeriveLogicalPartitioning(*cartesian),
            PartitioningProperty::Singleton());
}

// --- the runtime audit primitive --------------------------------------

TEST(PartitioningAuditTest, CountMisplacedRecordsFindsTheStray) {
  const size_t p = 4;
  std::hash<uint64_t> hasher;
  std::vector<std::vector<uint64_t>> parts(p);
  for (uint64_t v = 0; v < 40; ++v) parts[hasher(v) % p].push_back(v);

  auto key = [](const uint64_t& v) { return v; };
  uint64_t checked = 0;
  EXPECT_EQ(CountMisplacedRecords(parts, key, &checked), 0u);
  EXPECT_EQ(checked, 40u);

  // Move one record to a partition its hash does not map to.
  const uint64_t stray = parts[0].back();
  parts[0].pop_back();
  parts[(hasher(stray) % p + 1) % p].push_back(stray);
  EXPECT_EQ(CountMisplacedRecords(parts, key, &checked), 1u);
  EXPECT_EQ(checked, 40u);
}

TEST(PartitioningAuditTest, StatsTallyAndReset) {
  PartitioningAuditStats& stats = PartitioningAuditStats::Instance();
  stats.Reset();
  EXPECT_EQ(stats.checks(), 0u);
  stats.RecordCheck(/*records=*/10, /*misplaced=*/2);
  stats.RecordCheck(/*records=*/5, /*misplaced=*/0);
  EXPECT_EQ(stats.checks(), 2u);
  EXPECT_EQ(stats.records_checked(), 15u);
  EXPECT_EQ(stats.misplaced_records(), 2u);
  stats.Reset();
  EXPECT_EQ(stats.records_checked(), 0u);
}

TEST(PartitioningAuditDeathTest, AuditAbortsOnMisplacedElidedInput) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // FromVector places element i in partition i % p; with values i+1 and
  // an identity-style key every record re-hashes to (i+1) % p — a layout
  // an elided shuffle must reject wholesale once the audit runs.
  auto run = [] {
    setenv("GRADOOP_AUDIT_PARTITIONING", "1", 1);
    auto ctx = dataflow::MakeContext();
    std::vector<uint64_t> data(64);
    for (size_t i = 0; i < data.size(); ++i) data[i] = i + 1;
    auto left = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
    auto right = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
    auto key = [](const uint64_t& v) { return v; };
    auto join = left.HashJoin<uint64_t>(
        right, key, key,
        [](const uint64_t& l, const uint64_t&, std::vector<uint64_t>* out) {
          out->push_back(l);
        },
        dataflow::JoinStrategy::kRepartition, "AuditProbe",
        {/*left_prepartitioned=*/true, /*right_prepartitioned=*/false});
    (void)join;
  };
  EXPECT_DEATH(run(), "partitioning audit FAILED");
}

TEST(PartitioningAuditTest, CorrectlyPlacedElidedInputPassesTheAudit) {
  setenv("GRADOOP_AUDIT_PARTITIONING", "1", 1);
  PartitioningAuditStats& stats = PartitioningAuditStats::Instance();
  stats.Reset();
  auto ctx = dataflow::MakeContext();
  const int p = ctx->num_workers();
  // Element i of the source vector lands in partition i % p; choosing
  // values v with hash(v) % p == i % p makes the layout genuinely
  // hash-partitioned, so adopting it must pass.
  std::hash<uint64_t> hasher;
  std::vector<uint64_t> data;
  for (uint64_t v = 0; data.size() < 64; ++v) {
    if (hasher(v) % p == data.size() % p) data.push_back(v);
  }
  auto left = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
  auto right = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
  auto key = [](const uint64_t& v) { return v; };
  auto join = left.HashJoin<uint64_t>(
      right, key, key,
      [](const uint64_t& l, const uint64_t&, std::vector<uint64_t>* out) {
        out->push_back(l);
      },
      dataflow::JoinStrategy::kRepartition, "AuditProbe",
      {/*left_prepartitioned=*/true, /*right_prepartitioned=*/false});
  unsetenv("GRADOOP_AUDIT_PARTITIONING");
  EXPECT_EQ(join.Collect().size(), 64u);
  EXPECT_EQ(stats.checks(), 1u);
  EXPECT_EQ(stats.records_checked(), 64u);
  EXPECT_EQ(stats.misplaced_records(), 0u);
}

// --- compiled plans: claims, elisions, and the verifier ---------------

const std::vector<std::string>& LdbcQueries() {
  static const std::vector<std::string> queries = {
      ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
      ldbc::Query4(),    ldbc::Query5(),    ldbc::Query6()};
  return queries;
}

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

cypher::QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = cypher::QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

// Embeddings as a sorted multiset of plan-shape-independent rows: the
// raw embedding layout depends on the join order (which the elision
// tie-break legitimately changes), so rows are canonicalized to sorted
// variable->binding plus sorted access->value text before comparing.
std::vector<std::string> CanonicalRows(const EmbeddingSet& set) {
  const EmbeddingMetaData& meta = set.meta;
  std::vector<std::string> vars = meta.Variables();
  std::sort(vars.begin(), vars.end());
  auto props = meta.PropertyColumnsInOrder();
  std::sort(props.begin(), props.end());
  std::vector<std::string> rows;
  for (const Embedding& e : set.data.Collect()) {
    std::string row;
    for (const std::string& v : vars) {
      const int col = meta.IdColumn(v);
      if (col < 0) continue;
      row += v;
      row += '=';
      if (e.IsPathEntry(col)) {
        for (const uint64_t id : e.PathAt(col)) {
          row += std::to_string(id);
          row += ',';
        }
      } else {
        row += std::to_string(e.IdAt(col));
      }
      row += ';';
    }
    for (const auto& [v, k] : props) {
      row += v;
      row += '.';
      row += k;
      row += '=';
      e.PropertyAt(meta.PropertyColumn(v, k)).EncodeTo(&row);
      row += ';';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Walks the physical tree collecting every operator.
void CollectOps(const exec::PhysicalOperatorPtr& op,
                std::vector<exec::PhysicalOperator*>* out) {
  out->push_back(op.get());
  for (const auto& child : op->children()) CollectOps(child, out);
}

TEST(PartitioningAnalysisTest, EveryCompiledOperatorCarriesADerivableClaim) {
  auto graph = LdbcGraph();
  PlannerOptions options;
  options.allow_broadcast = false;
  CypherEngine engine(graph, options);
  for (const std::string& q : LdbcQueries()) {
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok()) << q << " -> " << result.status();
    ASSERT_NE(result.value().physical, nullptr) << q;
    std::vector<exec::PhysicalOperator*> ops;
    CollectOps(result.value().physical, &ops);
    for (exec::PhysicalOperator* op : ops) {
      ASSERT_TRUE(op->has_output_partitioning()) << q;
      EXPECT_EQ(op->output_partitioning(), exec::DerivePartitioning(*op))
          << q;
    }
    EXPECT_TRUE(
        analysis::VerifyCompiledPlan(result.value().query_graph,
                                     *result.value().physical)
            .ok())
        << q;
  }
}

TEST(PartitioningAnalysisTest, VerifierRejectsTamperedPartitioningClaim) {
  auto graph = LdbcGraph();
  PlannerOptions options;
  options.allow_broadcast = false;
  CypherEngine engine(graph, options);
  auto result = engine.Execute(ldbc::Query4());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result.value().physical, nullptr);

  // A claim the transfer function cannot derive must not verify.
  result.value().physical->set_output_partitioning(
      PartitioningProperty::HashOnVariables({"made_up"}));
  const Status s = analysis::VerifyCompiledPlan(result.value().query_graph,
                                                *result.value().physical);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("partitioning"), std::string::npos)
      << s.message();
}

TEST(PartitioningAnalysisTest, VerifierRejectsUnjustifiedElision) {
  auto graph = LdbcGraph();
  auto stats = GraphStatistics::Compute(graph);
  // Two scans joined on one variable: with elision compiled off, neither
  // join side is co-partitioned, so granting an elision by hand is a lie
  // the verifier must catch.
  auto qg = QG("MATCH (a)-[e1:knows]->(b), (a)-[e2:likes]->(c) RETURN *");
  PlannerOptions planner_options;
  planner_options.allow_broadcast = false;
  auto plan = PlanQuery(qg, stats, planner_options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  exec::CompileOptions options;
  options.elide_shuffles = false;
  exec::PlanCompiler compiler(qg, MorphismSetting::Neo4j(), options);
  auto physical = compiler.Compile(plan.value());
  ASSERT_TRUE(physical.ok()) << physical.status();
  ASSERT_TRUE(analysis::VerifyCompiledPlan(qg, *physical.value()).ok());

  std::vector<exec::PhysicalOperator*> ops;
  CollectOps(physical.value(), &ops);
  exec::JoinOp* join = nullptr;
  for (exec::PhysicalOperator* op : ops) {
    if (op->op_kind() == exec::PhysOpKind::kJoin &&
        static_cast<exec::JoinOp*>(op)->strategy() ==
            dataflow::JoinStrategy::kRepartition &&
        !static_cast<exec::JoinOp*>(op)->join_variables().empty()) {
      join = static_cast<exec::JoinOp*>(op);
      break;
    }
  }
  ASSERT_NE(join, nullptr) << "plan has no repartition join:\n"
                           << physical.value()->ToString();
  ASSERT_FALSE(join->elide_left_shuffle() || join->elide_right_shuffle());
  join->set_shuffle_elision(/*left=*/true, /*right=*/false);
  const Status s = analysis::VerifyCompiledPlan(qg, *physical.value());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("elided"), std::string::npos) << s.message();
}

// --- the pinned regression (ISSUE acceptance criterion) ---------------
//
// LDBC Q4 contains consecutive joins keyed on the same variable. With
// broadcast disabled, the analysis-enabled engine must (a) show elided
// shuffles in EXPLAIN, (b) move strictly fewer shuffle bytes than the
// analysis-disabled engine, and (c) produce identical embeddings.

TEST(PartitioningRegressionTest, ConsecutiveSameKeyJoinsShuffleLessQ4) {
  PlannerOptions elide_on;
  elide_on.allow_broadcast = false;
  PlannerOptions elide_off = elide_on;
  elide_off.elide_shuffles = false;

  auto ctx_on = dataflow::MakeContext();
  auto ctx_off = dataflow::MakeContext();
  ctx_on->EnableTelemetry();
  ctx_off->EnableTelemetry();
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  CypherEngine engine_on(ldbc::LdbcGenerator(cfg).Generate(ctx_on),
                         elide_on);
  CypherEngine engine_off(ldbc::LdbcGenerator(cfg).Generate(ctx_off),
                          elide_off);

  auto rendered = engine_on.Explain(ldbc::Query4());
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  EXPECT_NE(
      rendered.value().find("shuffle=elided (co-partitioned on person)"),
      std::string::npos)
      << rendered.value();

  ctx_on->telemetry().metrics().Reset();
  ctx_off->telemetry().metrics().Reset();
  auto on = engine_on.Execute(ldbc::Query4());
  auto off = engine_off.Execute(ldbc::Query4());
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(off.ok()) << off.status();

  const auto counters_on = ctx_on->telemetry().metrics().Snapshot().counters;
  const auto counters_off =
      ctx_off->telemetry().metrics().Snapshot().counters;
  auto counter = [](const std::map<std::string, uint64_t>& c,
                    const std::string& name) -> uint64_t {
    auto it = c.find(name);
    return it == c.end() ? 0 : it->second;
  };
  EXPECT_GE(counter(counters_on, "shuffle.elided.count"), 1u);
  EXPECT_GT(counter(counters_on, "shuffle.elided.bytes"), 0u);
  EXPECT_EQ(counter(counters_off, "shuffle.elided.count"), 0u);
  // The headline claim: strictly fewer total shuffle bytes, and fewer
  // exchanges, with the analysis on.
  EXPECT_LT(counter(counters_on, "shuffle.bytes"),
            counter(counters_off, "shuffle.bytes"));
  EXPECT_LT(counter(counters_on, "shuffle.count"),
            counter(counters_off, "shuffle.count"));

  // Same embeddings, canonicalized (the tie-break may change join order
  // between the two engines, which permutes the raw embedding layout).
  EXPECT_EQ(CanonicalRows(on.value().embeddings),
            CanonicalRows(off.value().embeddings));
}

TEST(PartitioningRegressionTest, AuditedLdbcQueriesMatchUnelidedResults) {
  PlannerOptions elide_on;
  elide_on.allow_broadcast = false;
  PlannerOptions elide_off = elide_on;
  elide_off.elide_shuffles = false;
  CypherEngine engine_on(LdbcGraph(), elide_on);
  CypherEngine engine_off(LdbcGraph(), elide_off);

  PartitioningAuditStats& stats = PartitioningAuditStats::Instance();
  stats.Reset();
  setenv("GRADOOP_AUDIT_PARTITIONING", "1", 1);
  std::vector<std::vector<std::string>> audited;
  for (const std::string& q : LdbcQueries()) {
    auto result = engine_on.Execute(q);
    ASSERT_TRUE(result.ok()) << q << " -> " << result.status();
    audited.push_back(CanonicalRows(result.value().embeddings));
  }
  unsetenv("GRADOOP_AUDIT_PARTITIONING");
  // The audit must actually have run (a disabled audit trivially
  // "passes") and must have found every record in its proven place.
  EXPECT_GT(stats.checks(), 0u);
  EXPECT_GT(stats.records_checked(), 0u);
  EXPECT_EQ(stats.misplaced_records(), 0u);

  for (size_t i = 0; i < LdbcQueries().size(); ++i) {
    auto result = engine_off.Execute(LdbcQueries()[i]);
    ASSERT_TRUE(result.ok()) << LdbcQueries()[i];
    EXPECT_EQ(audited[i], CanonicalRows(result.value().embeddings))
        << LdbcQueries()[i];
  }
}

}  // namespace
}  // namespace gradoop::query
