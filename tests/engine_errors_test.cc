// Error handling and edge cases of the top-level engine.
#include <gtest/gtest.h>

#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"

namespace gradoop::query {
namespace {

using epgm::Edge;
using epgm::GraphHead;
using epgm::LogicalGraph;
using epgm::Vertex;

LogicalGraph TinyGraph(dataflow::ExecutionContextPtr ctx) {
  return LogicalGraph::FromVectors(
      std::move(ctx), GraphHead(0, "G"),
      {Vertex(1, "Person", {{"name", "Alice"}}), Vertex(2, "Person")},
      {Edge(10, "knows", 1, 2)});
}

class EngineErrorsTest : public ::testing::Test {
 protected:
  EngineErrorsTest() : engine_(TinyGraph(dataflow::MakeContext())) {}
  CypherEngine engine_;
};

TEST_F(EngineErrorsTest, ParseErrorPropagates) {
  auto r = engine_.Count("MATCH (p:Person RETURN *");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(EngineErrorsTest, UnsupportedFeaturePropagates) {
  auto r = engine_.Count(
      "MATCH (a)-[e:knows*1..3]->(b) WHERE e.weight = 1 RETURN *");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(EngineErrorsTest, UnsatisfiableLabelsReturnEmpty) {
  auto r = engine_.Count(
      "MATCH (m:Comment)-[:x]->(a), (m:Post)-[:y]->(b) RETURN *");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(EngineErrorsTest, UnknownLabelMatchesNothing) {
  auto r = engine_.Count("MATCH (x:Ghost) RETURN *");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(EngineErrorsTest, UnknownEdgeTypeMatchesNothing) {
  auto r = engine_.Count("MATCH (a)-[e:ghost]->(b) RETURN *");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(EngineErrorsTest, PredicateOnMissingPropertyFiltersAll) {
  auto r = engine_.Count("MATCH (p:Person) WHERE p.ghost = 1 RETURN *");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(EngineErrorsTest, MatchOnEmptyResultIsEmptyCollection) {
  auto matches = engine_.Match("MATCH (x:Ghost) RETURN *");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches.value().NumGraphs(), 0u);
  EXPECT_EQ(matches.value().vertices().Count(), 0u);
}

TEST_F(EngineErrorsTest, EmptyGraph) {
  CypherEngine empty(LogicalGraph::FromVectors(dataflow::MakeContext(),
                                               GraphHead(0, "E"), {}, {}));
  auto r = empty.Count("MATCH (a:Person)-[e:knows]->(b) RETURN *");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value(), 0u);
}

TEST_F(EngineErrorsTest, VariableLengthWithUnboundedEndpointsStillPlans) {
  // Both endpoints unconstrained: the planner must introduce a vertex
  // scan for the start.
  auto r = engine_.Count("MATCH (a)-[e:knows*1..2]->(b) RETURN *");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value(), 1u);
}

TEST_F(EngineErrorsTest, ExplainDoesNotExecute) {
  auto before = engine_.graph().context()->tracker().NumStages();
  auto r = engine_.Explain("MATCH (p:Person)-[:knows]->(q) RETURN *");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine_.graph().context()->tracker().NumStages(), before);
}

TEST_F(EngineErrorsTest, RepeatedExecutionIsStable) {
  for (int i = 0; i < 5; ++i) {
    auto r = engine_.Count("MATCH (a:Person)-[e:knows]->(b:Person) RETURN *");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 1u);
  }
}

}  // namespace
}  // namespace gradoop::query
