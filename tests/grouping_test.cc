#include <gtest/gtest.h>

#include <map>

#include "epgm/grouping.h"
#include "ldbc/ldbc_generator.h"

namespace gradoop::epgm {
namespace {

dataflow::ExecutionContextPtr Ctx() { return dataflow::MakeContext(); }

LogicalGraph SocialGraph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"city", "Leipzig"}}),
      Vertex(2, "Person", {{"city", "Leipzig"}}),
      Vertex(3, "Person", {{"city", "Dresden"}}),
      Vertex(4, "Tag", {}),
      Vertex(5, "Tag", {}),
  };
  std::vector<Edge> edges = {
      Edge(10, "knows", 1, 2),   Edge(11, "knows", 2, 1),
      Edge(12, "knows", 1, 3),   Edge(13, "likes", 1, 4),
      Edge(14, "likes", 2, 4),   Edge(15, "likes", 3, 5),
  };
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(0, "G"),
                                   std::move(vertices), std::move(edges));
}

std::map<std::string, int64_t> VertexCounts(const LogicalGraph& g) {
  std::map<std::string, int64_t> out;
  for (const Vertex& v : g.vertices().Collect()) {
    out[v.label] = v.properties.Get("count").int_value();
  }
  return out;
}

TEST(GroupingTest, GroupByLabel) {
  auto grouped = GroupGraph(SocialGraph(Ctx()), GroupingConfig{}, 500, 1000);
  const auto counts = VertexCounts(grouped);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("Person"), 3);
  EXPECT_EQ(counts.at("Tag"), 2);

  // Super-edges: Person->Person knows (3), Person->Tag likes (3).
  auto edges = grouped.edges().Collect();
  ASSERT_EQ(edges.size(), 2u);
  std::map<std::string, int64_t> edge_counts;
  for (const Edge& e : edges) {
    edge_counts[e.label] = e.properties.Get("count").int_value();
  }
  EXPECT_EQ(edge_counts.at("knows"), 3);
  EXPECT_EQ(edge_counts.at("likes"), 3);
}

TEST(GroupingTest, GroupByLabelAndProperty) {
  GroupingConfig config;
  config.vertex_group_keys = {"city"};
  auto grouped = GroupGraph(SocialGraph(Ctx()), config, 500, 1000);
  // Persons split by city (Leipzig: 2, Dresden: 1); Tags have no city
  // (grouped under the null value).
  auto vertices = grouped.vertices().Collect();
  ASSERT_EQ(vertices.size(), 3u);
  int64_t leipzig = 0, dresden = 0;
  for (const Vertex& v : vertices) {
    if (v.properties.Get("city") == PropertyValue("Leipzig")) {
      leipzig = v.properties.Get("count").int_value();
    } else if (v.properties.Get("city") == PropertyValue("Dresden")) {
      dresden = v.properties.Get("count").int_value();
    }
  }
  EXPECT_EQ(leipzig, 2);
  EXPECT_EQ(dresden, 1);
}

TEST(GroupingTest, SuperEdgeEndpointsReferenceSuperVertices) {
  auto grouped = GroupGraph(SocialGraph(Ctx()), GroupingConfig{}, 500, 1000);
  std::map<uint64_t, std::string> super_label;
  for (const Vertex& v : grouped.vertices().Collect()) {
    super_label[v.id] = v.label;
    EXPECT_GE(v.id, 1000u);  // ids from the requested base
  }
  for (const Edge& e : grouped.edges().Collect()) {
    ASSERT_TRUE(super_label.contains(e.source_id));
    ASSERT_TRUE(super_label.contains(e.target_id));
    if (e.label == "knows") {
      EXPECT_EQ(super_label.at(e.source_id), "Person");
      EXPECT_EQ(super_label.at(e.target_id), "Person");
    }
    if (e.label == "likes") {
      EXPECT_EQ(super_label.at(e.source_id), "Person");
      EXPECT_EQ(super_label.at(e.target_id), "Tag");
    }
  }
}

TEST(GroupingTest, CountsArePreserved) {
  // Total vertex/edge counts of the summary equal the input sizes.
  auto ctx = Ctx();
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  auto graph = ldbc::LdbcGenerator(cfg).Generate(ctx);
  const uint64_t v_in = graph.vertices().Count();
  const uint64_t e_in = graph.edges().Count();

  auto grouped = GroupGraph(graph, GroupingConfig{}, 500, 1ull << 40);
  int64_t v_total = 0, e_total = 0;
  for (const Vertex& v : grouped.vertices().Collect()) {
    v_total += v.properties.Get("count").int_value();
  }
  for (const Edge& e : grouped.edges().Collect()) {
    e_total += e.properties.Get("count").int_value();
  }
  EXPECT_EQ(static_cast<uint64_t>(v_total), v_in);
  EXPECT_EQ(static_cast<uint64_t>(e_total), e_in);
  // One super-vertex per label.
  EXPECT_EQ(grouped.vertices().Count(), 7u);
}

TEST(GroupingTest, EdgePropertyGrouping) {
  auto ctx = Ctx();
  std::vector<Vertex> vertices = {Vertex(1, "P"), Vertex(2, "P")};
  std::vector<Edge> edges = {
      Edge(10, "studyAt", 1, 2, {{"classYear", int64_t{2014}}}),
      Edge(11, "studyAt", 1, 2, {{"classYear", int64_t{2014}}}),
      Edge(12, "studyAt", 1, 2, {{"classYear", int64_t{2015}}}),
  };
  auto g = LogicalGraph::FromVectors(ctx, GraphHead(0, "G"),
                                     std::move(vertices), std::move(edges));
  GroupingConfig config;
  config.edge_group_keys = {"classYear"};
  auto grouped = GroupGraph(g, config, 500, 1000);
  auto super_edges = grouped.edges().Collect();
  ASSERT_EQ(super_edges.size(), 2u);  // split by classYear
  int64_t total = 0;
  for (const Edge& e : super_edges) {
    total += e.properties.Get("count").int_value();
  }
  EXPECT_EQ(total, 3);
}

}  // namespace
}  // namespace gradoop::epgm
