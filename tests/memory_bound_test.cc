// Static memory-footprint analysis (docs/memory.md): the per-operator
// transfer functions, the lifetime-interval fold that distinguishes the
// plan peak from the naive sum, the verifier that re-derives every claim
// (and rejects tampered or missing ones), the GQL007 admission gate, the
// runtime accountant feeding per-operator measured peaks, and the
// GRADOOP_AUDIT_MEMORY audit that aborts on an unsound model.
#include "query/exec/memory_bound.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "cypher/parser.h"
#include "dataflow/dataset.h"
#include "dataflow/memory_accountant.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/exec/physical_operator.h"

namespace gradoop::query {
namespace {

using dataflow::MemoryAccountant;
using exec::DeriveMemoryBound;
using exec::EstimateRowBytes;
using exec::FoldLifetimePeak;
using exec::kEmbeddingHeaderBytes;
using exec::kEntryWidthBytes;
using exec::kJoinTableEntryBytes;
using exec::kPathBytesEstimate;
using exec::kPropertyBytesEstimate;
using exec::MemoryBound;

cypher::QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = cypher::QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

const std::vector<std::string>& LdbcQueries() {
  static const std::vector<std::string> queries = {
      ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
      ldbc::Query4(),    ldbc::Query5(),    ldbc::Query6()};
  return queries;
}

void CollectOps(const exec::PhysicalOperatorPtr& op,
                std::vector<exec::PhysicalOperator*>* out) {
  out->push_back(op.get());
  for (const auto& child : op->children()) CollectOps(child, out);
}

// --- row model and rendering ------------------------------------------

TEST(MemoryBoundTest, ToStringRendersAllFields) {
  MemoryBound b;
  b.row_bytes = 21;
  b.output_bytes = 4096;
  b.state_bytes = 64;
  b.peak_bytes = 8192;
  EXPECT_EQ(b.ToString(), "row=21B out=4096B state=64B peak=8192B");
}

TEST(EstimateRowBytesTest, CountsIdPathAndPropertyColumns) {
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  EXPECT_EQ(EstimateRowBytes(meta), kEmbeddingHeaderBytes + kEntryWidthBytes);

  meta.AddIdColumn("e", EntryType::kEdge);
  meta.AddIdColumn("p", EntryType::kPath);
  meta.AddPropertyColumn("a", "name");
  // The path binds an id column AND a variable-length payload estimate.
  EXPECT_EQ(EstimateRowBytes(meta),
            kEmbeddingHeaderBytes + 3 * kEntryWidthBytes +
                kPathBytesEstimate + kPropertyBytesEstimate);
}

// --- the lifetime-interval fold ---------------------------------------

TEST(FoldLifetimePeakTest, IntervalModelUndercutsTheNaiveSum) {
  // Two inputs whose internal peaks (1000B each) dwarf their outputs
  // (100B each): under the interval model the second input's peak is
  // reached after the first released its internals, so the plan peak is
  // 100 + 1000 — not the 2250-byte sum of every figure in sight.
  const uint64_t outputs[] = {100, 100};
  const uint64_t peaks[] = {1000, 1000};
  const uint64_t folded = FoldLifetimePeak(outputs, peaks, 2, 0, 50);
  EXPECT_EQ(folded, 1100u);
  const uint64_t naive_sum = 100 + 100 + 1000 + 1000 + 50;
  EXPECT_LT(folded, naive_sum);
}

TEST(FoldLifetimePeakTest, FinalTermDominatesWhenStateIsLarge) {
  // All inputs resident + operator state + output is the high-water mark
  // when the children are cheap and the operator's own state is not.
  const uint64_t outputs[] = {10, 10};
  const uint64_t peaks[] = {10, 10};
  EXPECT_EQ(FoldLifetimePeak(outputs, peaks, 2, 100, 5), 125u);
}

TEST(FoldLifetimePeakTest, LeafIsStatePlusOutput) {
  EXPECT_EQ(FoldLifetimePeak(nullptr, nullptr, 0, 0, 210), 210u);
  EXPECT_EQ(FoldLifetimePeak(nullptr, nullptr, 0, 32, 210), 242u);
}

// --- per-operator transfer functions ----------------------------------

std::shared_ptr<exec::VertexScanOp> MakeScan(const cypher::QueryGraph& qg,
                                             const std::string& var,
                                             int index, double estimate) {
  EmbeddingMetaData meta;
  meta.AddIdColumn(var, EntryType::kVertex);
  auto scan = std::make_shared<exec::VertexScanOp>(
      std::move(meta), estimate, MorphismSetting::Neo4j(),
      std::vector<cypher::CnfClause>{}, qg.vertices()[index],
      std::vector<cypher::CnfClause>{});
  scan->set_memory_bound(DeriveMemoryBound(*scan));
  return scan;
}

TEST(TransferFunctionTest, ScanIsStatelessAndPeaksAtItsOutput) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto scan = MakeScan(qg, "a", 0, 10.0);
  const MemoryBound b = scan->memory_bound();
  EXPECT_EQ(b.row_bytes, kEmbeddingHeaderBytes + kEntryWidthBytes);
  EXPECT_EQ(b.output_bytes, b.row_bytes * 10);
  EXPECT_EQ(b.state_bytes, 0u);
  EXPECT_EQ(b.peak_bytes, b.output_bytes);
}

TEST(TransferFunctionTest, FilterAddsNoState) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto scan = MakeScan(qg, "a", 0, 10.0);
  exec::FilterOp filter(scan->output_meta(), 4.0, MorphismSetting::Neo4j(),
                        scan, {});
  const MemoryBound b = DeriveMemoryBound(filter);
  EXPECT_EQ(b.state_bytes, 0u);
  // Scan output lives until the filter returns: peak covers both.
  EXPECT_EQ(b.peak_bytes,
            scan->memory_bound().output_bytes + b.output_bytes);
}

TEST(TransferFunctionTest, RepartitionJoinChargesStagingAndBuildTable) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto left = MakeScan(qg, "a", 0, 4.0);
  auto right = MakeScan(qg, "b", 1, 8.0);
  auto merged = EmbeddingMetaData::Merge(left->output_meta(),
                                         right->output_meta());
  exec::JoinOp join(merged, 5.0, MorphismSetting::Neo4j(), {}, left, right,
                    {"a"}, {0}, {0}, dataflow::JoinStrategy::kRepartition);
  const MemoryBound b = DeriveMemoryBound(join);
  const uint64_t left_out = left->memory_bound().output_bytes;
  const uint64_t right_out = right->memory_bound().output_bytes;
  EXPECT_EQ(b.state_bytes,
            left_out + right_out + 8 * kJoinTableEntryBytes);
  EXPECT_EQ(b.peak_bytes,
            left_out + right_out + b.state_bytes + b.output_bytes);
}

TEST(TransferFunctionTest, BroadcastJoinScalesWithWorkerCount) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto left = MakeScan(qg, "a", 0, 4.0);
  auto right = MakeScan(qg, "b", 1, 8.0);
  auto merged = EmbeddingMetaData::Merge(left->output_meta(),
                                         right->output_meta());
  exec::JoinOp join(merged, 5.0, MorphismSetting::Neo4j(), {}, left, right,
                    {"a"}, {0}, {0}, dataflow::JoinStrategy::kBroadcast);
  const uint64_t left_out = left->memory_bound().output_bytes;
  const uint64_t right_out = right->memory_bound().output_bytes;
  for (int p : {2, 4, 8}) {
    const MemoryBound b = DeriveMemoryBound(join, p);
    // The build side is concatenated once and replicated to p workers,
    // each of which builds a table over all 8 build rows.
    EXPECT_EQ(b.state_bytes,
              left_out + (static_cast<uint64_t>(p) + 1) * right_out +
                  static_cast<uint64_t>(p) * 8 * kJoinTableEntryBytes)
        << "p=" << p;
  }
  EXPECT_GT(DeriveMemoryBound(join, 8).peak_bytes,
            DeriveMemoryBound(join, 2).peak_bytes);
}

// --- compiled plans: claims, verifier, admission ----------------------

TEST(MemoryAnalysisTest, EveryCompiledOperatorCarriesADerivableClaim) {
  CypherEngine engine(LdbcGraph());
  for (const std::string& q : LdbcQueries()) {
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok()) << q << " -> " << result.status();
    ASSERT_NE(result.value().physical, nullptr) << q;
    std::vector<exec::PhysicalOperator*> ops;
    CollectOps(result.value().physical, &ops);
    for (exec::PhysicalOperator* op : ops) {
      ASSERT_TRUE(op->has_memory_bound()) << q;
      EXPECT_EQ(op->memory_bound(), DeriveMemoryBound(*op)) << q;
      EXPECT_GT(op->memory_bound().peak_bytes, 0u) << q;
      if (op->op_kind() == exec::PhysOpKind::kExpand) {
        // The compiler stamped the edge-input estimate from the graph
        // statistics; expansions price a full edge-dataset join per hop.
        EXPECT_GT(static_cast<exec::ExpandOp*>(op)->edge_input_estimate(),
                  0u)
            << q;
      }
    }
    EXPECT_TRUE(analysis::VerifyCompiledPlan(result.value().query_graph,
                                             *result.value().physical)
                    .ok())
        << q;
  }
}

TEST(MemoryAnalysisTest, VerifierRejectsTamperedClaim) {
  CypherEngine engine(LdbcGraph());
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result.value().physical, nullptr);
  // An all-zero claim is not what the transfer function derives.
  result.value().physical->set_memory_bound(MemoryBound{});
  const Status s = analysis::VerifyCompiledPlan(result.value().query_graph,
                                                *result.value().physical);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("memory bound"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("not derivable"), std::string::npos)
      << s.message();
}

TEST(MemoryAnalysisTest, VerifierRejectsMissingClaim) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  // A structurally valid scan that skipped the annotation pass.
  exec::VertexScanOp scan(meta, 1.0, MorphismSetting::Neo4j(), {},
                          qg.vertices()[0], {});
  const Status s = analysis::VerifyCompiledPlan(qg, scan);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing memory bound claim"),
            std::string::npos)
      << s.message();
}

TEST(MemoryAdmissionTest, TinyBudgetRejectsBeforeExecution) {
  CypherEngine engine(LdbcGraph());
  engine.set_max_query_memory_bytes(64);
  auto rejected = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("GQL007"), std::string::npos)
      << rejected.status();
  EXPECT_NE(rejected.status().message().find("max_query_memory_bytes"),
            std::string::npos)
      << rejected.status();
  // Nothing executed: the per-query accountant was never enabled, so no
  // dataflow work was charged on this engine's context.
  EXPECT_EQ(engine.graph().vertices().context()->accountant().peak_bytes(),
            0u);
  // EXPLAIN runs the same admission gate.
  auto explain = engine.Explain(ldbc::Query1("Alice"));
  ASSERT_FALSE(explain.ok());
  EXPECT_NE(explain.status().message().find("GQL007"), std::string::npos);

  // Lifting the budget admits the same query unchanged.
  engine.set_max_query_memory_bytes(0);
  auto admitted = engine.Execute(ldbc::Query1("Alice"));
  EXPECT_TRUE(admitted.ok()) << admitted.status();

  // A budget above the plan's static bound admits it too.
  engine.set_max_query_memory_bytes(1ull << 40);
  EXPECT_TRUE(engine.Execute(ldbc::Query1("Alice")).ok());
}

// --- runtime accounting ------------------------------------------------

TEST(MemoryAccountantTest, FramesMeasureSubtreeRelativePeaks) {
  MemoryAccountant accountant;
  // Disabled: every operation is a no-op (the default-off guarantee the
  // accounting-overhead bench relies on).
  accountant.Charge(100);
  accountant.PushFrame();
  EXPECT_EQ(accountant.PopFrame(), 0u);
  EXPECT_EQ(accountant.peak_bytes(), 0u);

  accountant.Enable();
  accountant.Charge(100);  // an older sibling's output, still resident
  accountant.PushFrame();
  accountant.Charge(50);
  accountant.PushFrame();
  accountant.Charge(200);
  accountant.Release(200);
  // The inner frame's own peak excludes the 150 bytes held at entry.
  EXPECT_EQ(accountant.PopFrame(), 200u);
  // ...but its high-water mark folds into the enclosing frame.
  EXPECT_EQ(accountant.PopFrame(), 250u);
  EXPECT_EQ(accountant.peak_bytes(), 350u);
  EXPECT_EQ(accountant.current_bytes(), 150u);
  accountant.Reset();
  EXPECT_EQ(accountant.peak_bytes(), 0u);
}

TEST(MemoryAccountingTest, BothJoinStrategiesChargeTheAccountant) {
  // Satellite of the ExplainAnalyze asymmetry fix: broadcast joins must
  // account their staged records/bytes exactly like repartition joins.
  for (auto strategy : {dataflow::JoinStrategy::kRepartition,
                        dataflow::JoinStrategy::kBroadcast}) {
    auto ctx = dataflow::MakeContext();
    ctx->accountant().Enable();
    std::vector<uint64_t> data(64);
    for (size_t i = 0; i < data.size(); ++i) data[i] = i + 1;
    auto left = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
    auto right = dataflow::Dataset<uint64_t>::FromVector(ctx, data);
    const uint64_t records_before = ctx->tracker().TotalRecords();
    auto key = [](const uint64_t& v) { return v; };
    auto join = left.HashJoin<uint64_t>(
        right, key, key,
        [](const uint64_t& l, const uint64_t&, std::vector<uint64_t>* out) {
          out->push_back(l);
        },
        strategy, "AccountingProbe");
    EXPECT_EQ(join.Collect().size(), 64u);
    // The build side's 64 records enter the exchange under either
    // strategy (this was silently zero on the broadcast path).
    EXPECT_GE(ctx->tracker().TotalRecords() - records_before, 64u)
        << "strategy=" << static_cast<int>(strategy);
    EXPECT_GT(ctx->accountant().peak_bytes(), 0u);
    // The transient staging + build table was released at kernel exit.
    EXPECT_EQ(ctx->accountant().current_bytes(), 0u);
  }
}

TEST(MemoryAccountingTest, EngineActualsPopulatedForBothJoinStrategies) {
  for (bool broadcast : {true, false}) {
    PlannerOptions options;
    options.allow_broadcast = broadcast;
    CypherEngine engine(LdbcGraph(), options);
    auto result = engine.Execute(ldbc::Query1("Alice"));
    ASSERT_TRUE(result.ok()) << result.status();
    std::vector<exec::PhysicalOperator*> ops;
    CollectOps(result.value().physical, &ops);
    for (exec::PhysicalOperator* op : ops) {
      EXPECT_TRUE(op->stats().executed);
      EXPECT_GT(op->stats().actual_peak_bytes, 0u)
          << op->name() << " broadcast=" << broadcast;
      if (op->op_kind() == exec::PhysOpKind::kJoin) {
        EXPECT_GT(op->stats().network_bytes, 0u)
            << op->name() << " broadcast=" << broadcast;
      }
    }
  }
}

TEST(MemoryAccountingTest, DisablingAccountingZeroesActualsOnly) {
  CypherEngine engine(LdbcGraph());
  engine.set_account_memory(false);
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<exec::PhysicalOperator*> ops;
  CollectOps(result.value().physical, &ops);
  for (exec::PhysicalOperator* op : ops) {
    EXPECT_TRUE(op->has_memory_bound());  // static claims are unaffected
    EXPECT_EQ(op->stats().actual_peak_bytes, 0u);
  }
}

// --- the runtime audit -------------------------------------------------

TEST(MemoryAuditTest, CleanLdbcRunPassesAndCountsOperators) {
  exec::MemoryAuditStats& stats = exec::MemoryAuditStats::Instance();
  stats.Reset();
  setenv("GRADOOP_AUDIT_MEMORY", "1", 1);
  CypherEngine engine(LdbcGraph());
  for (const std::string& q : LdbcQueries()) {
    auto result = engine.Execute(q);
    EXPECT_TRUE(result.ok()) << q << " -> " << result.status();
  }
  unsetenv("GRADOOP_AUDIT_MEMORY");
  // One audit per executed query, every operator checked, none violated
  // (a disabled audit would trivially "pass" with zero checks).
  EXPECT_GE(stats.checks(), 6u);
  EXPECT_GT(stats.operators_checked(), 6u);
  EXPECT_EQ(stats.violations(), 0u);
}

TEST(MemoryAuditDeathTest, AbortsOnUnderClaimedPlan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run = [] {
    CypherEngine engine(LdbcGraph());
    auto result = engine.Execute(ldbc::Query1("Alice"));
    if (!result.ok() || result.value().physical == nullptr) return;
    // Tamper every claim down to zero: the measured peaks are real, so
    // the audit's allowance (slack x the claimed model) collapses and
    // the first checked operator must abort the process.
    std::vector<exec::PhysicalOperator*> ops;
    CollectOps(result.value().physical, &ops);
    for (exec::PhysicalOperator* op : ops) {
      op->set_memory_bound(MemoryBound{});
    }
    exec::AuditCompiledPlanMemory(*result.value().physical, 4);
  };
  EXPECT_DEATH(run(), "memory audit FAILED");
}

}  // namespace
}  // namespace gradoop::query
