#include "query/exec/plan_compiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "cypher/parser.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/planner.h"

namespace gradoop::query {
namespace {

using cypher::Expression;
using cypher::QueryGraph;

const std::vector<std::string>& LdbcQueries() {
  static const std::vector<std::string> queries = {
      ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
      ldbc::Query4(),    ldbc::Query5(),    ldbc::Query6()};
  return queries;
}

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

// Embeddings as a sorted multiset of serialized rows: two plans are
// equivalent iff these compare equal (order across partitions is not
// pinned down by the operator contracts).
std::vector<std::string> SortedRows(const EmbeddingSet& set) {
  std::vector<std::string> rows;
  for (const Embedding& e : set.data.Collect()) {
    std::string row;
    e.EncodeTo(&row);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

uint64_t PropertyBytes(const EmbeddingSet& set) {
  uint64_t bytes = 0;
  for (const Embedding& e : set.data.Collect()) bytes += e.prop_data().size();
  return bytes;
}

// --- the compiled layout is the executed layout ------------------------

TEST(PlanCompilerTest, CompiledRootMetaDataMatchesExecutedEmbeddings) {
  CypherEngine engine(LdbcGraph());
  for (const std::string& q : LdbcQueries()) {
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok()) << q << " -> " << result.status();
    ASSERT_NE(result.value().physical, nullptr) << q;
    EXPECT_EQ(result.value().physical->output_meta().ToString(),
              result.value().embeddings.meta.ToString())
        << q;
  }
}

TEST(PlanCompilerTest, CompiledPlansPassVerification) {
  auto graph = LdbcGraph();
  auto stats = GraphStatistics::Compute(graph);
  for (const std::string& q : LdbcQueries()) {
    auto qg = QG(q);
    auto plan = PlanQuery(qg, stats, {});
    ASSERT_TRUE(plan.ok()) << q << " -> " << plan.status();
    for (const bool fuse : {false, true}) {
      for (const bool prune : {false, true}) {
        exec::CompileOptions options;
        options.fuse_filters = fuse;
        options.prune_properties = prune;
        exec::PlanCompiler compiler(qg, MorphismSetting::Neo4j(), options);
        auto physical = compiler.Compile(plan.value());
        ASSERT_TRUE(physical.ok()) << q << " -> " << physical.status();
        const Status s = analysis::VerifyCompiledPlan(qg, *physical.value());
        EXPECT_TRUE(s.ok()) << q << " (fuse=" << fuse << " prune=" << prune
                            << ") -> " << s;
      }
    }
  }
}

// --- filter fusion ----------------------------------------------------

TEST(PlanCompilerTest, FusedPlansReturnIdenticalEmbeddings) {
  auto graph = LdbcGraph();
  // Queries with cross predicates / filters so fusion has something to do.
  const std::vector<std::string> queries = {
      "MATCH (p:Person)-[:knows]->(q:Person) "
      "WHERE p.firstName <> q.firstName RETURN *",
      ldbc::Query1("Alice"),
      ldbc::Query6(),
  };
  for (const std::string& q : queries) {
    PlannerOptions fused_options;
    fused_options.fuse_filters = true;
    fused_options.prune_properties = false;
    PlannerOptions unfused_options;
    unfused_options.fuse_filters = false;
    unfused_options.prune_properties = false;
    CypherEngine fused(graph, fused_options);
    CypherEngine unfused(graph, unfused_options);
    auto a = fused.Execute(q);
    auto b = unfused.Execute(q);
    ASSERT_TRUE(a.ok()) << q << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << q << " -> " << b.status();
    EXPECT_EQ(SortedRows(a.value().embeddings),
              SortedRows(b.value().embeddings))
        << q;
  }
}

TEST(PlanCompilerTest, FusionRemovesStandaloneFilterStages) {
  auto graph = LdbcGraph();
  const std::string q =
      "MATCH (p:Person)-[:knows]->(q:Person) "
      "WHERE p.firstName <> q.firstName RETURN *";
  PlannerOptions unfused_options;
  unfused_options.fuse_filters = false;
  CypherEngine fused(graph);
  CypherEngine unfused(graph, unfused_options);
  auto with = fused.Explain(q);
  auto without = unfused.Explain(q);
  ASSERT_TRUE(with.ok()) << with.status();
  ASSERT_TRUE(without.ok()) << without.status();
  EXPECT_EQ(with.value().find("SelectEmbeddings"), std::string::npos)
      << with.value();
  EXPECT_NE(without.value().find("SelectEmbeddings"), std::string::npos)
      << without.value();
  // The fused predicate is rendered on the operator it was pushed into.
  EXPECT_NE(with.value().find("+filter("), std::string::npos) << with.value();
}

// --- property pruning -------------------------------------------------

TEST(PlanCompilerTest, PruningKeepsMatchesAndShrinksEmbeddings) {
  auto graph = LdbcGraph();
  // LDBC Query 1: person.firstName is WHERE-only (an element predicate
  // evaluated on the raw vertex inside the scan) — pruning drops it from
  // the embeddings while message.creationDate/content stay (RETURN).
  const std::string q = ldbc::Query1("Alice");
  PlannerOptions pruned_options;
  pruned_options.prune_properties = true;
  PlannerOptions unpruned_options;
  unpruned_options.prune_properties = false;
  CypherEngine pruned(graph, pruned_options);
  CypherEngine unpruned(graph, unpruned_options);
  auto a = pruned.Execute(q);
  auto b = unpruned.Execute(q);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a.value().embeddings.data.Count(),
            b.value().embeddings.data.Count());
  ASSERT_GT(b.value().embeddings.data.Count(), 0u);
  // Same matches, strictly fewer projected property bytes.
  EXPECT_LT(PropertyBytes(a.value().embeddings),
            PropertyBytes(b.value().embeddings));
  // The WHERE-only property is gone from the compiled layout.
  EXPECT_LT(a.value().embeddings.meta.PropertyColumn("person", "firstName"),
            0);
  EXPECT_GE(b.value().embeddings.meta.PropertyColumn("person", "firstName"),
            0);
  EXPECT_GE(
      a.value().embeddings.meta.PropertyColumn("message", "creationDate"), 0);
}

// --- compile-time layout errors ---------------------------------------

TEST(PlanCompilerTest, RejectsDanglingFilterPropertyColumn) {
  auto graph = LdbcGraph();
  auto stats = GraphStatistics::Compute(graph);
  auto qg = QG(
      "MATCH (a:Person)-[:knows]->(b:Person) "
      "WHERE a.firstName <> b.firstName RETURN *");
  auto plan = PlanQuery(qg, stats, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Find the filter and add a clause over a property no scan projects.
  std::function<PlanNode*(const PlanNodePtr&)> find_filter =
      [&](const PlanNodePtr& node) -> PlanNode* {
    if (node == nullptr) return nullptr;
    if (node->kind == PlanNode::Kind::kFilter) return node.get();
    if (PlanNode* n = find_filter(node->left)) return n;
    return find_filter(node->right);
  };
  PlanNode* filter = find_filter(plan.value());
  ASSERT_NE(filter, nullptr);
  cypher::CnfClause dangling;
  dangling.atoms.push_back(Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "bogus"),
      Expression::Literal(epgm::PropertyValue(int64_t{1}))));
  filter->clauses.push_back(dangling);
  for (const bool fuse : {false, true}) {
    exec::CompileOptions options;
    options.fuse_filters = fuse;
    options.prune_properties = false;
    exec::PlanCompiler compiler(qg, MorphismSetting::Neo4j(), options);
    auto physical = compiler.Compile(plan.value());
    ASSERT_FALSE(physical.ok()) << "fuse=" << fuse;
    EXPECT_NE(physical.status().message().find("a.bogus"), std::string::npos)
        << physical.status();
  }
}

TEST(PlanCompilerTest, RejectsDanglingValueJoinKey) {
  auto graph = LdbcGraph();
  auto stats = GraphStatistics::Compute(graph);
  auto qg = QG(
      "MATCH (p:Person), (q:Person) WHERE p.firstName = q.lastName RETURN *");
  auto plan = PlanQuery(qg, stats, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::function<PlanNode*(const PlanNodePtr&)> find_vj =
      [&](const PlanNodePtr& node) -> PlanNode* {
    if (node == nullptr) return nullptr;
    if (node->kind == PlanNode::Kind::kValueJoin) return node.get();
    if (PlanNode* n = find_vj(node->left)) return n;
    return find_vj(node->right);
  };
  PlanNode* vj = find_vj(plan.value());
  ASSERT_NE(vj, nullptr);
  vj->value_join_keys[0].first = Expression::PropertyAccess("p", "nope");
  exec::CompileOptions options;
  options.prune_properties = false;
  exec::PlanCompiler compiler(qg, MorphismSetting::Neo4j(), options);
  auto physical = compiler.Compile(plan.value());
  ASSERT_FALSE(physical.ok());
  EXPECT_NE(physical.status().message().find("no projected"),
            std::string::npos)
      << physical.status();
}

// --- scan sharing through the compiled plan ---------------------------

TEST(PlanCompilerTest, SharedScansStillMatchUnsharedResults) {
  auto graph = LdbcGraph();
  PlannerOptions shared_options;
  shared_options.share_scan_results = true;
  CypherEngine shared(graph, shared_options);
  CypherEngine unshared(graph);
  const std::string q = ldbc::Query6();
  auto a = shared.Execute(q);
  auto b = unshared.Execute(q);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(SortedRows(a.value().embeddings),
            SortedRows(b.value().embeddings));
}

}  // namespace
}  // namespace gradoop::query
