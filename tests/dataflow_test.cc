#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>

#include "dataflow/bulk_iteration.h"
#include "dataflow/dataset.h"
#include "dataflow/thread_pool.h"

namespace gradoop::dataflow {
namespace {

ExecutionContextPtr Ctx(int workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return MakeContext(cfg);
}

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.RunAndWait(100, [&](int i) { hits[i] = i + 1; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i], i + 1);
}

TEST(ThreadPoolTest, SequentialBatches) {
  ThreadPool pool(2);
  int total = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<int> parts(8, 0);
    pool.RunAndWait(8, [&](int i) { parts[i] = 1; });
    total += std::accumulate(parts.begin(), parts.end(), 0);
  }
  EXPECT_EQ(total, 80);
}

TEST(ThreadPoolTest, StressManyBatchesUnderContention) {
  // Hammers the queue / pending / batch_done handshake: many short wide
  // batches so workers constantly race on batch boundaries. Run under
  // TSan by ci/check.sh.
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.RunAndWait(64, [&](int i) {
      sum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 200ull * (63 * 64 / 2));
}

TEST(ThreadPoolTest, StressShutdownWhileEnqueueing) {
  // Shutdown racing active submitters: several host threads pump
  // batches through a shared pool right up to the moment it is
  // destroyed, so the destructor's shutdown/notify handshake races the
  // workers' final wait/drain cycles and the submitters' last
  // batch_done wakeups. The TSan tree of ci/check.sh (with
  // detect_deadlocks=1) is the build this exists for; the lock-rank
  // checker also sees every acquisition in Debug trees.
  constexpr int kIterations = 50;
  constexpr int kSubmitters = 4;
  std::atomic<uint64_t> executed{0};  // ordering: relaxed tally, summed
                                      // only after every thread joined
  for (int iter = 0; iter < kIterations; ++iter) {
    std::atomic<bool> stop{false};  // ordering: relaxed on/off flag;
                                    // joins below give the sync
    const uint64_t before = executed.load(std::memory_order_relaxed);
    auto pool = std::make_unique<ThreadPool>(4);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          pool->RunAndWait(8, [&](int) {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    // Let at least one batch land before pulling the plug — on a loaded
    // machine the submitters may not have been scheduled yet, and an
    // all-idle iteration exercises nothing (and breaks the executed > 0
    // assertion below).
    while (executed.load(std::memory_order_relaxed) == before) {
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : submitters) t.join();
    // Destroy immediately after the last RunAndWait returns: workers
    // may still be between their final queue check and the shutdown
    // wakeup, which is exactly the window under test.
    pool.reset();
  }
  EXPECT_EQ(executed.load() % 8, 0u);
  EXPECT_GT(executed.load(), 0u);
}

TEST(DatasetTest, WideShufflePipelineUnderContention) {
  // Shuffle + join + reduce with many partitions: per-partition output
  // slots are written concurrently by the pool, so TSan covers the
  // dataset transformation paths end to end.
  ClusterConfig cfg;
  cfg.num_workers = 16;
  auto ctx = MakeContext(cfg);
  std::vector<int> data(2000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(ctx, std::move(data));
  auto key = [](const int& v) { return static_cast<uint64_t>(v % 31); };
  auto joined = ds.HashJoin<int>(
      ds, key, key,
      [](const int& l, const int& r, std::vector<int>* out) {
        out->push_back(l + r);
      });
  // 2000 = 31*64 + 16: sixteen key classes of 65 values, fifteen of 64.
  EXPECT_EQ(joined.Count(), 16ull * 65 * 65 + 15ull * 64 * 64);
  auto reduced = ds.ReduceByKey(
      key, [](const int&) { return uint64_t{1}; },
      [](uint64_t acc, const int&) { return acc + 1; });
  uint64_t total = 0;
  for (const auto& [k, n] : reduced.Collect()) total += n;
  EXPECT_EQ(total, 2000u);
  EXPECT_EQ(ds.Distinct(key).Count(), 31u);
}

TEST(DatasetTest, FromVectorPartitionsEverything) {
  auto ctx = Ctx(4);
  std::vector<int> data(103);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(ctx, data);
  EXPECT_EQ(ds.num_partitions(), 4);
  EXPECT_EQ(Sorted(ds.Collect()), data);
}

TEST(DatasetTest, MapTransformsEachRecord) {
  auto ctx = Ctx(3);
  auto ds = Dataset<int>::FromVector(ctx, {1, 2, 3, 4, 5});
  auto doubled = ds.Map([](const int& x) { return x * 2; });
  EXPECT_EQ(Sorted(doubled.Collect()), (std::vector<int>{2, 4, 6, 8, 10}));
}

TEST(DatasetTest, FlatMapEmitsZeroOrMore) {
  auto ctx = Ctx(2);
  auto ds = Dataset<int>::FromVector(ctx, {1, 2, 3});
  auto out = ds.FlatMap<int>([](const int& x, std::vector<int>* dst) {
    for (int i = 0; i < x; ++i) dst->push_back(x);
  });
  EXPECT_EQ(Sorted(out.Collect()), (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  auto ctx = Ctx(2);
  auto ds = Dataset<int>::FromVector(ctx, {1, 2, 3, 4, 5, 6});
  auto even = ds.Filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(Sorted(even.Collect()), (std::vector<int>{2, 4, 6}));
}

TEST(DatasetTest, UnionConcatenates) {
  auto ctx = Ctx(2);
  auto a = Dataset<int>::FromVector(ctx, {1, 2});
  auto b = Dataset<int>::FromVector(ctx, {3, 4});
  EXPECT_EQ(Sorted(a.Union(b).Collect()), (std::vector<int>{1, 2, 3, 4}));
}

TEST(DatasetTest, MapPartitionSeesWholePartition) {
  auto ctx = Ctx(4);
  auto ds = Dataset<int>::FromVector(ctx, {1, 2, 3, 4, 5, 6, 7, 8});
  auto sums = ds.MapPartition<int>(
      [](int part, const std::vector<int>& in, std::vector<int>* out) {
        (void)part;
        out->push_back(std::accumulate(in.begin(), in.end(), 0));
      });
  const auto collected = sums.Collect();
  EXPECT_EQ(std::accumulate(collected.begin(), collected.end(), 0), 36);
}

TEST(DatasetTest, RepartitionGroupsKeysOnOneWorker) {
  auto ctx = Ctx(4);
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(ctx, data)
                .RepartitionByKey([](const int& x) {
                  return static_cast<uint64_t>(x % 8);
                });
  // All records with the same key must live in the same partition.
  for (int key = 0; key < 8; ++key) {
    int partitions_holding = 0;
    for (int p = 0; p < ds.num_partitions(); ++p) {
      const bool has = std::any_of(
          ds.partition(p).begin(), ds.partition(p).end(),
          [key](int x) { return x % 8 == key; });
      if (has) ++partitions_holding;
    }
    EXPECT_EQ(partitions_holding, 1) << "key " << key;
  }
  EXPECT_EQ(Sorted(ds.Collect()), data);
}

TEST(DatasetTest, DistinctRemovesDuplicateKeys) {
  auto ctx = Ctx(3);
  auto ds = Dataset<int>::FromVector(ctx, {1, 2, 2, 3, 3, 3, 4});
  auto d = ds.Distinct([](const int& x) { return static_cast<uint64_t>(x); });
  EXPECT_EQ(Sorted(d.Collect()), (std::vector<int>{1, 2, 3, 4}));
}

TEST(DatasetTest, ReduceByKeyAggregates) {
  auto ctx = Ctx(4);
  std::vector<int> data;
  for (int i = 0; i < 30; ++i) data.push_back(i);
  auto ds = Dataset<int>::FromVector(ctx, data);
  auto reduced = ds.ReduceByKey(
      [](const int& x) { return static_cast<uint64_t>(x % 3); },
      [](const int& x) { return x; },
      [](int acc, const int& x) { return acc + x; });
  auto rows = reduced.Collect();
  ASSERT_EQ(rows.size(), 3u);
  int total = 0;
  for (const auto& [k, sum] : rows) total += sum;
  EXPECT_EQ(total, 435);  // sum 0..29
}

TEST(DatasetTest, HashJoinMatchesKeys) {
  auto ctx = Ctx(4);
  auto left = Dataset<int>::FromVector(ctx, {1, 2, 3, 4});
  auto right = Dataset<int>::FromVector(ctx, {2, 4, 6});
  auto joined = left.HashJoin<int>(
      right, [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& l, const int& r, std::vector<int>* out) {
        out->push_back(l + r);
      });
  EXPECT_EQ(Sorted(joined.Collect()), (std::vector<int>{4, 8}));
}

TEST(DatasetTest, HashJoinDuplicateKeysProduceCrossProduct) {
  auto ctx = Ctx(2);
  auto left = Dataset<int>::FromVector(ctx, {10, 10});
  auto right = Dataset<int>::FromVector(ctx, {10, 10, 10});
  auto joined = left.HashJoin<int>(
      right, [](const int&) { return uint64_t{1}; },
      [](const int&) { return uint64_t{1}; },
      [](const int&, const int&, std::vector<int>* out) {
        out->push_back(1);
      });
  EXPECT_EQ(joined.Collect().size(), 6u);
}

TEST(DatasetTest, BroadcastJoinMatchesRepartitionJoin) {
  auto ctx = Ctx(4);
  std::vector<int> ldata(100), rdata = {5, 10, 15};
  std::iota(ldata.begin(), ldata.end(), 0);
  auto left = Dataset<int>::FromVector(ctx, ldata);
  auto right = Dataset<int>::FromVector(ctx, rdata);
  auto key = [](const int& x) { return static_cast<uint64_t>(x); };
  auto joiner = [](const int& l, const int&, std::vector<int>* out) {
    out->push_back(l);
  };
  auto a = left.HashJoin<int>(right, key, key, joiner,
                              JoinStrategy::kRepartition);
  auto b = left.HashJoin<int>(right, key, key, joiner,
                              JoinStrategy::kBroadcast);
  EXPECT_EQ(Sorted(a.Collect()), Sorted(b.Collect()));
  EXPECT_EQ(Sorted(a.Collect()), (std::vector<int>{5, 10, 15}));
}

TEST(DatasetTest, FlatJoinCanDropPairs) {
  auto ctx = Ctx(2);
  auto left = Dataset<int>::FromVector(ctx, {1, 2, 3});
  auto right = Dataset<int>::FromVector(ctx, {1, 2, 3});
  auto joined = left.HashJoin<int>(
      right, [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& l, const int&, std::vector<int>* out) {
        if (l % 2 == 1) out->push_back(l);  // FlatJoin: emit conditionally
      });
  EXPECT_EQ(Sorted(joined.Collect()), (std::vector<int>{1, 3}));
}

TEST(DatasetTest, CountMatchesCollect) {
  auto ctx = Ctx(4);
  std::vector<int> data(57);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(ctx, data);
  EXPECT_EQ(ds.Count(), 57u);
}

TEST(DatasetTest, SingleWorkerStillWorks) {
  auto ctx = Ctx(1);
  auto ds = Dataset<int>::FromVector(ctx, {3, 1, 2});
  EXPECT_EQ(Sorted(ds.Collect()), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ds.Count(), 3u);
}

TEST(BulkIterationTest, RunsBodyUntilBound) {
  auto ctx = Ctx(2);
  auto initial = Dataset<int>::FromVector(ctx, {1});
  std::vector<uint64_t> sizes;
  BulkIterate<int>(
      initial, 5,
      [](const Dataset<int>& working, int) {
        return working.FlatMap<int>([](const int& x, std::vector<int>* out) {
          out->push_back(x * 2);
          out->push_back(x * 2 + 1);
        });
      },
      [&sizes](const Dataset<int>& working, int) {
        uint64_t n = 0;
        for (int p = 0; p < working.num_partitions(); ++p) {
          n += working.partition(p).size();
        }
        sizes.push_back(n);
      });
  EXPECT_EQ(sizes, (std::vector<uint64_t>{2, 4, 8, 16, 32}));
}

TEST(BulkIterationTest, TerminatesWhenWorkingSetEmpty) {
  auto ctx = Ctx(2);
  auto initial = Dataset<int>::FromVector(ctx, {4});
  int iterations = 0;
  BulkIterate<int>(
      initial, 100,
      [](const Dataset<int>& working, int) {
        return working.FlatMap<int>([](const int& x, std::vector<int>* out) {
          if (x > 1) out->push_back(x / 2);
        });
      },
      [&iterations](const Dataset<int>&, int) { ++iterations; });
  EXPECT_EQ(iterations, 3);  // 4 -> 2 -> 1 -> (empty input stops loop)
}

// --- cost model ------------------------------------------------------------

TEST(CostModelTest, StagesAccumulate) {
  auto ctx = Ctx(4);
  auto ds = Dataset<int>::FromVector(ctx, std::vector<int>(1000, 1));
  const int before = ctx->tracker().NumStages();
  ds.Map([](const int& x) { return x; });
  EXPECT_EQ(ctx->tracker().NumStages(), before + 1);
  EXPECT_GT(ctx->tracker().SimulatedSeconds(), 0.0);
}

TEST(CostModelTest, ShuffleChargesNetworkBytes) {
  auto ctx = Ctx(4);
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::FromVector(ctx, data);
  const uint64_t before = ctx->tracker().NetworkBytes();
  // Key chosen so records leave their round-robin home partition.
  ds.RepartitionByKey(
      [](const int& x) { return static_cast<uint64_t>(x / 4); });
  EXPECT_GT(ctx->tracker().NetworkBytes(), before);
}

TEST(CostModelTest, NarrowOpsChargeNoNetwork) {
  auto ctx = Ctx(4);
  auto ds = Dataset<int>::FromVector(ctx, std::vector<int>(100, 7));
  const uint64_t before = ctx->tracker().NetworkBytes();
  ds.Map([](const int& x) { return x + 1; })
      .Filter([](const int& x) { return x > 0; });
  EXPECT_EQ(ctx->tracker().NetworkBytes(), before);
}

TEST(CostModelTest, MoreWorkersReduceComputeTime) {
  // The same compute-heavy job must be simulated-faster on more workers.
  auto run = [](int workers) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    cfg.stage_latency_sec = 0.0;  // isolate compute scaling
    auto ctx = MakeContext(cfg);
    std::vector<int> data(100000);
    std::iota(data.begin(), data.end(), 0);
    auto ds = Dataset<int>::FromVector(ctx, data);
    ds.Map([](const int& x) { return x * 2; });
    return ctx->tracker().SimulatedSeconds();
  };
  const double t1 = run(1), t4 = run(4), t16 = run(16);
  EXPECT_GT(t1, 3.0 * t4 / 1.2);
  EXPECT_GT(t4, t16);
}

TEST(CostModelTest, StageLatencyCapsSpeedupOnTinyData) {
  auto run = [](int workers) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    auto ctx = MakeContext(cfg);
    auto ds = Dataset<int>::FromVector(ctx, {1, 2, 3});
    ds.Map([](const int& x) { return x; });
    return ctx->tracker().SimulatedSeconds();
  };
  // With ~no data the fixed latency dominates: no speedup at all.
  EXPECT_NEAR(run(1), run(16), 1e-3);
}

TEST(CostModelTest, SkewedJoinKeysPreventSpeedup) {
  // All records share one key: after repartitioning, a single worker
  // holds every record, so the join's build/probe time must not improve
  // with more workers (the paper's load-imbalance effect on Q5/Q6).
  auto run = [](int workers) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    cfg.stage_latency_sec = 0.0;
    auto ctx = MakeContext(cfg);
    std::vector<int> skewed(5000, 7);  // single hot key
    auto left = Dataset<int>::FromVector(ctx, skewed);
    auto right = Dataset<int>::FromVector(ctx, {7});
    left.HashJoin<int>(
        right, [](const int& x) { return static_cast<uint64_t>(x); },
        [](const int& x) { return static_cast<uint64_t>(x); },
        [](const int& l, const int&, std::vector<int>* out) {
          out->push_back(l);
        });
    double build_probe = 0;
    for (const auto& stage : ctx->tracker().Stages()) {
      if (stage.label.find("BuildProbe") != std::string::npos) {
        build_probe += stage.compute_sec;
      }
    }
    return build_probe;
  };
  // The hot partition processes all 5000 records regardless of workers.
  EXPECT_NEAR(run(4), run(16), run(4) * 0.05);
}

TEST(CostModelTest, SpillChargedWhenStateExceedsMemory) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.worker_memory_bytes = 1024;  // tiny budget to force spilling
  auto ctx = MakeContext(cfg);
  std::vector<int> data(4096);
  std::iota(data.begin(), data.end(), 0);
  auto left = Dataset<int>::FromVector(ctx, data);
  auto right = Dataset<int>::FromVector(ctx, data);
  left.HashJoin<int>(
      right, [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& x) { return static_cast<uint64_t>(x); },
      [](const int& l, const int&, std::vector<int>* out) {
        out->push_back(l);
      });
  EXPECT_GT(ctx->tracker().SpilledBytes(), 0u);
}

TEST(CostModelTest, MoreWorkersAvoidSpill) {
  auto spilled = [](int workers) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    cfg.worker_memory_bytes = 16 << 10;
    auto ctx = MakeContext(cfg);
    std::vector<int> data(8000);
    std::iota(data.begin(), data.end(), 0);
    auto left = Dataset<int>::FromVector(ctx, data);
    auto right = Dataset<int>::FromVector(ctx, data);
    left.HashJoin<int>(
        right, [](const int& x) { return static_cast<uint64_t>(x); },
        [](const int& x) { return static_cast<uint64_t>(x); },
        [](const int& l, const int&, std::vector<int>* out) {
          out->push_back(l);
        });
    return ctx->tracker().SpilledBytes();
  };
  EXPECT_GT(spilled(1), 0u);
  EXPECT_EQ(spilled(16), 0u);  // aggregate memory now fits the build side
}

TEST(CostModelTest, ShuffleSecondsUsesSlowestWorker) {
  ClusterConfig cfg;
  cfg.network_bytes_per_sec = 100.0;
  const double t =
      ShuffleSeconds({1000, 10, 10}, {10, 500, 10}, cfg);
  EXPECT_DOUBLE_EQ(t, 10.0);  // worker 0 sends 1000 bytes at 100 B/s
}

TEST(CostModelTest, SpillSecondsCountsExcessTwice) {
  ClusterConfig cfg;
  cfg.worker_memory_bytes = 100;
  cfg.disk_bytes_per_sec = 10.0;
  cfg.seconds_per_record = 0.0;  // isolate the disk component
  uint64_t spilled = 0;
  const double t = SpillSeconds({150, 80}, {15, 8}, cfg, &spilled);
  EXPECT_EQ(spilled, 50u);
  EXPECT_DOUBLE_EQ(t, 10.0);  // 50 excess * 2 passes / 10 B/s
}

TEST(CostModelTest, SpillChargesRecordSerialization) {
  ClusterConfig cfg;
  cfg.worker_memory_bytes = 100;
  cfg.disk_bytes_per_sec = 1e12;  // isolate the serialization component
  cfg.seconds_per_record = 0.01;
  uint64_t spilled = 0;
  // 200 bytes of state across 20 records; half the bytes spill, so 10
  // records pay serialize + deserialize: 10 * 2 * 0.01 = 0.2s.
  const double t = SpillSeconds({200}, {20}, cfg, &spilled);
  EXPECT_EQ(spilled, 100u);
  EXPECT_NEAR(t, 0.2, 1e-9);
}

}  // namespace
}  // namespace gradoop::dataflow
