#include "analysis/plan_verifier.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/type_check.h"
#include "cypher/parser.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/operators.h"
#include "query/planner.h"

namespace gradoop::analysis {
namespace {

using cypher::Expression;
using cypher::QueryGraph;
using query::PlanNode;
using query::PlanNodePtr;

QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

query::GraphStatistics LdbcStats() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  auto graph = ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
  return query::GraphStatistics::Compute(graph);
}

PlanNodePtr PlanFor(const QueryGraph& qg,
                    const query::PlannerOptions& options = {}) {
  auto plan = query::PlanQuery(qg, LdbcStats(), options);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.value();
}

// First node of `kind` in preorder; the tests mutate it to corrupt a
// specific invariant.
PlanNodePtr FindNodePtr(const PlanNodePtr& plan, PlanNode::Kind kind) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == kind) return plan;
  if (PlanNodePtr n = FindNodePtr(plan->left, kind)) return n;
  return FindNodePtr(plan->right, kind);
}

PlanNode* FindNode(const PlanNodePtr& plan, PlanNode::Kind kind) {
  return FindNodePtr(plan, kind).get();
}

// --- planner output is accepted --------------------------------------

TEST(PlanVerifierTest, AcceptsAllSixLdbcPlansInEveryPlannerMode) {
  auto stats = LdbcStats();
  for (const auto mode : {query::PlannerOptions::Mode::kGreedy,
                          query::PlannerOptions::Mode::kLeftDeep,
                          query::PlannerOptions::Mode::kDynamicProgramming}) {
    query::PlannerOptions options;
    options.mode = mode;
    for (const std::string& q :
         {ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
          ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
      auto qg = QG(q);
      auto plan = query::PlanQuery(qg, stats, options);
      ASSERT_TRUE(plan.ok()) << q << " -> " << plan.status();
      const Status s =
          VerifyPlan(qg, plan.value(), VerifyOptions::Exhaustive());
      EXPECT_TRUE(s.ok()) << q << " -> " << s;
    }
  }
}

TEST(PlanVerifierTest, AcceptsValueJoinPlans) {
  auto qg = QG(
      "MATCH (p:Person), (q:Person) WHERE p.firstName = q.lastName RETURN *");
  auto plan = PlanFor(qg);
  ASSERT_NE(FindNode(plan, PlanNode::Kind::kValueJoin), nullptr);
  EXPECT_TRUE(VerifyPlan(qg, plan, VerifyOptions::Exhaustive()).ok());
}

TEST(PlanVerifierTest, RejectsIllTypedScanPredicate) {
  // A single-variable clause executes inside the leaf scan and never
  // appears as a plan node; exhaustive verification must still type-check
  // it through the query graph.
  auto qg = QG("MATCH (a:Person) WHERE a.firstName < true RETURN *");
  query::PlannerOptions options;
  options.verify_candidates = false;  // reach VerifyPlan with a full plan
  auto plan = PlanFor(qg, options);
  EXPECT_TRUE(VerifyPlan(qg, plan, VerifyOptions::Cheap()).ok());
  const Status s = VerifyPlan(qg, plan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPlanError);
  EXPECT_NE(s.message().find("cannot order"), std::string::npos) << s;
}

// --- one corrupted plan per invariant ---------------------------------

TEST(PlanVerifierTest, RejectsOutOfRangeVertexScanIndex) {
  auto qg = QG("MATCH (p:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* scan = FindNode(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  scan->element_index = 7;
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("element_index 7"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsOutOfRangeExpandIndex) {
  auto qg = QG("MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* expand = FindNode(plan, PlanNode::Kind::kExpand);
  ASSERT_NE(expand, nullptr);
  expand->element_index = 5;
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outside query edges"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsUnboundJoinVariable) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* join = FindNode(plan, PlanNode::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  // {p, q} are query variables, but no join of this plan shares both
  // between its two inputs.
  join->join_variables.assign({"p", "q"});
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("shared variables"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsDroppedJoinVariable) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* join = FindNode(plan, PlanNode::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  // Forgetting the shared variable silently drops an id equality.
  join->join_variables.clear();
  EXPECT_FALSE(VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap()).ok());
}

TEST(PlanVerifierTest, RejectsCorruptedBoundVariables) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  plan->bound_variables.insert("ghost");
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ghost"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsDanglingFilterPropertyColumn) {
  auto qg = QG(
      "MATCH (a:Person)-[:knows]->(b:Person) "
      "WHERE a.firstName <> b.firstName RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* filter = FindNode(plan, PlanNode::Kind::kFilter);
  ASSERT_NE(filter, nullptr);
  // The clause reads a property the scans never projected: its column
  // does not exist in any embedding of the subtree.
  cypher::CnfClause dangling;
  dangling.atoms.push_back(Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "bogus"),
      Expression::Literal(epgm::PropertyValue(int64_t{1}))));
  filter->clauses.push_back(dangling);
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("a.bogus"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsDanglingValueJoinKey) {
  auto qg = QG(
      "MATCH (p:Person), (q:Person) WHERE p.firstName = q.lastName RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* vj = FindNode(plan, PlanNode::Kind::kValueJoin);
  ASSERT_NE(vj, nullptr);
  vj->value_join_keys[0].first = Expression::PropertyAccess("p", "nope");
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no projected"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsFilterOnUnboundVariable) {
  auto qg = QG(
      "MATCH (a:Person)-[:knows]->(b:Person) "
      "WHERE a.firstName <> b.firstName RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* filter = FindNode(plan, PlanNode::Kind::kFilter);
  ASSERT_NE(filter, nullptr);
  // Push the cross filter below the join that binds `b`: find the scan of
  // `a` and hang the filter's clauses off a fresh filter node above it.
  PlanNode* scan = FindNode(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  auto misplaced = std::make_shared<PlanNode>(*scan);
  auto wrapper = std::make_shared<PlanNode>();
  wrapper->kind = PlanNode::Kind::kFilter;
  wrapper->left = misplaced;
  wrapper->clauses = filter->clauses;
  wrapper->bound_variables = misplaced->bound_variables;
  wrapper->property_variables = misplaced->property_variables;
  wrapper->estimated_cardinality = misplaced->estimated_cardinality;
  const Status s =
      VerifyCandidatePlan(qg, wrapper, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbound variable"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsIllTypedPredicate) {
  auto qg = QG("MATCH (p:Person) WHERE p.firstName = 'X' RETURN *");
  auto plan = PlanFor(qg);
  // Wrap the plan in a filter whose clause cannot type: ordering an
  // integer against a string is statically never satisfiable.
  auto filter = std::make_shared<PlanNode>();
  filter->kind = PlanNode::Kind::kFilter;
  filter->left = plan;
  filter->bound_variables = plan->bound_variables;
  filter->property_variables = plan->property_variables;
  filter->estimated_cardinality = plan->estimated_cardinality;
  cypher::CnfClause clause;
  clause.atoms.push_back(Expression::Comparison(
      cypher::ComparisonOp::kLt,
      Expression::Literal(epgm::PropertyValue(int64_t{1})),
      Expression::Literal(epgm::PropertyValue("a"))));
  filter->clauses.push_back(clause);
  const Status s =
      VerifyCandidatePlan(qg, filter, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPlanError);
  EXPECT_NE(s.message().find("ill-typed"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsIncompletePlanOnlyAtTheRoot) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  // A lone scan is a fine candidate but not a complete plan: it leaves
  // the edge and the other vertex unbound.
  PlanNodePtr scan = FindNodePtr(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(
      VerifyCandidatePlan(qg, scan, VerifyOptions::Exhaustive()).ok());
  const Status s = VerifyPlan(qg, scan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbound"), std::string::npos) << s;
}

// --- expression type checker ------------------------------------------

TEST(TypeCheckTest, AcceptsSchemaFreePropertyComparisons) {
  // A property access is statically unknown: everything may compare.
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{3})));
  auto t = CheckExpression(cmp);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t.value(), StaticType::kBoolean);
}

TEST(TypeCheckTest, AcceptsNullOperands) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::Literal(epgm::PropertyValue()),
      Expression::Literal(epgm::PropertyValue("a")));
  EXPECT_TRUE(CheckExpression(cmp).ok());
}

TEST(TypeCheckTest, RejectsOrderingMismatchedLiteralTypes) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kGte,
      Expression::Literal(epgm::PropertyValue(int64_t{1})),
      Expression::Literal(epgm::PropertyValue("a")));
  const auto t = CheckExpression(cmp);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kPlanError);
  EXPECT_NE(t.status().message().find("cannot order"), std::string::npos);
}

TEST(TypeCheckTest, RejectsOrderingBooleans) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt,
      Expression::Literal(epgm::PropertyValue(true)),
      Expression::Literal(epgm::PropertyValue(false)));
  EXPECT_FALSE(CheckExpression(cmp).ok());
}

TEST(TypeCheckTest, RejectsOrderingAgainstBooleanWithUnknownSide) {
  // A property access is statically unknown, but nothing orders against a
  // boolean, so `a.x < true` is NULL for every value of a.x.
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(true)));
  const auto t = CheckExpression(cmp);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("cannot order"), std::string::npos);
  // Equality stays legal: `a.x = true` has a well-defined runtime result.
  auto eq = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(true)));
  EXPECT_TRUE(CheckExpression(eq).ok());
}

TEST(TypeCheckTest, RejectsComparisonOfNonValueOperand) {
  // The evaluator asserts on this shape (EvaluateValue only handles
  // literals and property accesses); the checker must reject it first.
  auto inner = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{1})));
  auto outer = Expression::Comparison(
      cypher::ComparisonOp::kEq, inner,
      Expression::Literal(epgm::PropertyValue(true)));
  const auto t = CheckExpression(outer);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("not a value"), std::string::npos);
}

TEST(TypeCheckTest, RejectsNonBooleanPredicatePosition) {
  // WHERE 42 — a bare non-boolean literal in predicate position.
  cypher::CnfClause clause;
  clause.atoms.push_back(
      Expression::Literal(epgm::PropertyValue(int64_t{42})));
  EXPECT_FALSE(CheckClause(clause).ok());
}

TEST(TypeCheckTest, AcceptsLogicalOverComparisons) {
  auto lhs = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{1})));
  auto rhs = Expression::Comparison(
      cypher::ComparisonOp::kNeq, Expression::PropertyAccess("b", "y"),
      Expression::Literal(epgm::PropertyValue("z")));
  EXPECT_TRUE(CheckExpression(Expression::And(lhs, rhs)).ok());
  EXPECT_TRUE(CheckExpression(Expression::Not(lhs)).ok());
  // AND over a non-boolean operand is rejected.
  EXPECT_FALSE(
      CheckExpression(
          Expression::And(lhs,
                          Expression::Literal(epgm::PropertyValue(int64_t{1}))))
          .ok());
}

// --- meta data simulation matches the operators -----------------------

TEST(PlanVerifierTest, EdgeScanSimulationMatchesOperatorMetaData) {
  auto qg = QG(
      "MATCH (p:Person)-[k:knows]->(q:Person) "
      "WHERE k.since > 2000 RETURN *");
  const cypher::QueryEdge& e = qg.edges()[0];
  const std::string& src = qg.vertices()[e.source].variable;
  const std::string& dst = qg.vertices()[e.target].variable;
  auto scan = std::make_shared<PlanNode>();
  scan->kind = PlanNode::Kind::kScanEdges;
  scan->element_index = 0;
  scan->bound_variables = {src, e.variable, dst};
  scan->property_variables = {e.variable};
  scan->estimated_cardinality = 1.0;
  auto simulated = PlanVerifier(qg).SimulateMetaData(scan);
  ASSERT_TRUE(simulated.ok()) << simulated.status();
  const auto actual = query::EdgeScanMetaData(
      e, src, dst, qg.NeededProperties(e.variable));
  EXPECT_EQ(simulated.value().ToString(), actual.ToString());
}

TEST(PlanVerifierTest, SimulationMatchesExecutedMetaData) {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  auto graph = ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
  query::CypherEngine engine(std::move(graph));
  for (const std::string& q :
       {std::string("MATCH (p:Person)-[:knows]->(q:Person) "
                    "WHERE p.firstName <> q.firstName RETURN *"),
        std::string("MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN *"),
        ldbc::Query1("X"), ldbc::Query4(), ldbc::Query6()}) {
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok()) << q << " -> " << result.status();
    auto simulated =
        PlanVerifier(result.value().query_graph)
            .SimulateMetaData(result.value().plan);
    ASSERT_TRUE(simulated.ok()) << q << " -> " << simulated.status();
    EXPECT_EQ(simulated.value().ToString(),
              result.value().embeddings.meta.ToString())
        << q;
  }
}

}  // namespace
}  // namespace gradoop::analysis
