#include "analysis/plan_verifier.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/type_check.h"
#include "cypher/parser.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/exec/interruptibility.h"
#include "query/exec/plan_compiler.h"
#include "query/operators.h"
#include "query/planner.h"

namespace gradoop::analysis {
namespace {

using cypher::Expression;
using cypher::QueryGraph;
using query::PlanNode;
using query::PlanNodePtr;

QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

query::GraphStatistics LdbcStats() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  auto graph = ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
  return query::GraphStatistics::Compute(graph);
}

PlanNodePtr PlanFor(const QueryGraph& qg,
                    const query::PlannerOptions& options = {}) {
  auto plan = query::PlanQuery(qg, LdbcStats(), options);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.value();
}

// First node of `kind` in preorder; the tests mutate it to corrupt a
// specific invariant.
PlanNodePtr FindNodePtr(const PlanNodePtr& plan, PlanNode::Kind kind) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == kind) return plan;
  if (PlanNodePtr n = FindNodePtr(plan->left, kind)) return n;
  return FindNodePtr(plan->right, kind);
}

PlanNode* FindNode(const PlanNodePtr& plan, PlanNode::Kind kind) {
  return FindNodePtr(plan, kind).get();
}

// --- planner output is accepted --------------------------------------

TEST(PlanVerifierTest, AcceptsAllSixLdbcPlansInEveryPlannerMode) {
  auto stats = LdbcStats();
  for (const auto mode : {query::PlannerOptions::Mode::kGreedy,
                          query::PlannerOptions::Mode::kLeftDeep,
                          query::PlannerOptions::Mode::kDynamicProgramming}) {
    query::PlannerOptions options;
    options.mode = mode;
    for (const std::string& q :
         {ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
          ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
      auto qg = QG(q);
      auto plan = query::PlanQuery(qg, stats, options);
      ASSERT_TRUE(plan.ok()) << q << " -> " << plan.status();
      const Status s =
          VerifyPlan(qg, plan.value(), VerifyOptions::Exhaustive());
      EXPECT_TRUE(s.ok()) << q << " -> " << s;
    }
  }
}

TEST(PlanVerifierTest, AcceptsValueJoinPlans) {
  auto qg = QG(
      "MATCH (p:Person), (q:Person) WHERE p.firstName = q.lastName RETURN *");
  auto plan = PlanFor(qg);
  ASSERT_NE(FindNode(plan, PlanNode::Kind::kValueJoin), nullptr);
  EXPECT_TRUE(VerifyPlan(qg, plan, VerifyOptions::Exhaustive()).ok());
}

TEST(PlanVerifierTest, RejectsIllTypedScanPredicate) {
  // A single-variable clause executes inside the leaf scan and never
  // appears as a plan node; exhaustive verification must still type-check
  // it through the query graph.
  auto qg = QG("MATCH (a:Person) WHERE a.firstName < true RETURN *");
  query::PlannerOptions options;
  options.verify_candidates = false;  // reach VerifyPlan with a full plan
  auto plan = PlanFor(qg, options);
  EXPECT_TRUE(VerifyPlan(qg, plan, VerifyOptions::Cheap()).ok());
  const Status s = VerifyPlan(qg, plan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPlanError);
  EXPECT_NE(s.message().find("cannot order"), std::string::npos) << s;
}

// --- one corrupted plan per invariant ---------------------------------

TEST(PlanVerifierTest, RejectsOutOfRangeVertexScanIndex) {
  auto qg = QG("MATCH (p:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* scan = FindNode(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  scan->element_index = 7;
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("element_index 7"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsOutOfRangeExpandIndex) {
  auto qg = QG("MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* expand = FindNode(plan, PlanNode::Kind::kExpand);
  ASSERT_NE(expand, nullptr);
  expand->element_index = 5;
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("outside query edges"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsUnboundJoinVariable) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* join = FindNode(plan, PlanNode::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  // {p, q} are query variables, but no join of this plan shares both
  // between its two inputs.
  join->join_variables.assign({"p", "q"});
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("shared variables"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsDroppedJoinVariable) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* join = FindNode(plan, PlanNode::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  // Forgetting the shared variable silently drops an id equality.
  join->join_variables.clear();
  EXPECT_FALSE(VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap()).ok());
}

TEST(PlanVerifierTest, RejectsCorruptedBoundVariables) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  plan->bound_variables.insert("ghost");
  const Status s = VerifyCandidatePlan(qg, plan, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ghost"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsFilterOnUnboundVariable) {
  auto qg = QG(
      "MATCH (a:Person)-[:knows]->(b:Person) "
      "WHERE a.firstName <> b.firstName RETURN *");
  auto plan = PlanFor(qg);
  PlanNode* filter = FindNode(plan, PlanNode::Kind::kFilter);
  ASSERT_NE(filter, nullptr);
  // Push the cross filter below the join that binds `b`: find the scan of
  // `a` and hang the filter's clauses off a fresh filter node above it.
  PlanNode* scan = FindNode(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  auto misplaced = std::make_shared<PlanNode>(*scan);
  auto wrapper = std::make_shared<PlanNode>();
  wrapper->kind = PlanNode::Kind::kFilter;
  wrapper->left = misplaced;
  wrapper->clauses = filter->clauses;
  wrapper->bound_variables = misplaced->bound_variables;
  wrapper->property_variables = misplaced->property_variables;
  wrapper->estimated_cardinality = misplaced->estimated_cardinality;
  const Status s =
      VerifyCandidatePlan(qg, wrapper, VerifyOptions::Cheap());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbound variable"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsIllTypedPredicate) {
  auto qg = QG("MATCH (p:Person) WHERE p.firstName = 'X' RETURN *");
  auto plan = PlanFor(qg);
  // Wrap the plan in a filter whose clause cannot type: ordering an
  // integer against a string is statically never satisfiable.
  auto filter = std::make_shared<PlanNode>();
  filter->kind = PlanNode::Kind::kFilter;
  filter->left = plan;
  filter->bound_variables = plan->bound_variables;
  filter->property_variables = plan->property_variables;
  filter->estimated_cardinality = plan->estimated_cardinality;
  cypher::CnfClause clause;
  clause.atoms.push_back(Expression::Comparison(
      cypher::ComparisonOp::kLt,
      Expression::Literal(epgm::PropertyValue(int64_t{1})),
      Expression::Literal(epgm::PropertyValue("a"))));
  filter->clauses.push_back(clause);
  const Status s =
      VerifyCandidatePlan(qg, filter, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPlanError);
  EXPECT_NE(s.message().find("ill-typed"), std::string::npos) << s;
}

TEST(PlanVerifierTest, RejectsIncompletePlanOnlyAtTheRoot) {
  auto qg = QG("MATCH (p:Person)-[:knows]->(q:Person) RETURN *");
  auto plan = PlanFor(qg);
  // A lone scan is a fine candidate but not a complete plan: it leaves
  // the edge and the other vertex unbound.
  PlanNodePtr scan = FindNodePtr(plan, PlanNode::Kind::kScanVertices);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(
      VerifyCandidatePlan(qg, scan, VerifyOptions::Exhaustive()).ok());
  const Status s = VerifyPlan(qg, scan, VerifyOptions::Exhaustive());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbound"), std::string::npos) << s;
}

// --- expression type checker ------------------------------------------

TEST(TypeCheckTest, AcceptsSchemaFreePropertyComparisons) {
  // A property access is statically unknown: everything may compare.
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{3})));
  auto t = CheckExpression(cmp);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t.value(), StaticType::kBoolean);
}

TEST(TypeCheckTest, AcceptsNullOperands) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::Literal(epgm::PropertyValue()),
      Expression::Literal(epgm::PropertyValue("a")));
  EXPECT_TRUE(CheckExpression(cmp).ok());
}

TEST(TypeCheckTest, RejectsOrderingMismatchedLiteralTypes) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kGte,
      Expression::Literal(epgm::PropertyValue(int64_t{1})),
      Expression::Literal(epgm::PropertyValue("a")));
  const auto t = CheckExpression(cmp);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kPlanError);
  EXPECT_NE(t.status().message().find("cannot order"), std::string::npos);
}

TEST(TypeCheckTest, RejectsOrderingBooleans) {
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt,
      Expression::Literal(epgm::PropertyValue(true)),
      Expression::Literal(epgm::PropertyValue(false)));
  EXPECT_FALSE(CheckExpression(cmp).ok());
}

TEST(TypeCheckTest, RejectsOrderingAgainstBooleanWithUnknownSide) {
  // A property access is statically unknown, but nothing orders against a
  // boolean, so `a.x < true` is NULL for every value of a.x.
  auto cmp = Expression::Comparison(
      cypher::ComparisonOp::kLt, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(true)));
  const auto t = CheckExpression(cmp);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("cannot order"), std::string::npos);
  // Equality stays legal: `a.x = true` has a well-defined runtime result.
  auto eq = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(true)));
  EXPECT_TRUE(CheckExpression(eq).ok());
}

TEST(TypeCheckTest, RejectsComparisonOfNonValueOperand) {
  // The evaluator asserts on this shape (EvaluateValue only handles
  // literals and property accesses); the checker must reject it first.
  auto inner = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{1})));
  auto outer = Expression::Comparison(
      cypher::ComparisonOp::kEq, inner,
      Expression::Literal(epgm::PropertyValue(true)));
  const auto t = CheckExpression(outer);
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("not a value"), std::string::npos);
}

TEST(TypeCheckTest, RejectsNonBooleanPredicatePosition) {
  // WHERE 42 — a bare non-boolean literal in predicate position.
  cypher::CnfClause clause;
  clause.atoms.push_back(
      Expression::Literal(epgm::PropertyValue(int64_t{42})));
  EXPECT_FALSE(CheckClause(clause).ok());
}

TEST(TypeCheckTest, AcceptsLogicalOverComparisons) {
  auto lhs = Expression::Comparison(
      cypher::ComparisonOp::kEq, Expression::PropertyAccess("a", "x"),
      Expression::Literal(epgm::PropertyValue(int64_t{1})));
  auto rhs = Expression::Comparison(
      cypher::ComparisonOp::kNeq, Expression::PropertyAccess("b", "y"),
      Expression::Literal(epgm::PropertyValue("z")));
  EXPECT_TRUE(CheckExpression(Expression::And(lhs, rhs)).ok());
  EXPECT_TRUE(CheckExpression(Expression::Not(lhs)).ok());
  // AND over a non-boolean operand is rejected.
  EXPECT_FALSE(
      CheckExpression(
          Expression::And(lhs,
                          Expression::Literal(epgm::PropertyValue(int64_t{1}))))
          .ok());
}

// --- compiled plan verification ---------------------------------------

TEST(VerifyCompiledPlanTest, AcceptsCompiledLdbcPlans) {
  auto stats = LdbcStats();
  for (const std::string& q :
       {ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
        ldbc::Query4(), ldbc::Query5(), ldbc::Query6()}) {
    auto qg = QG(q);
    auto plan = query::PlanQuery(qg, stats, {});
    ASSERT_TRUE(plan.ok()) << q << " -> " << plan.status();
    query::exec::PlanCompiler compiler(qg, query::MorphismSetting::Neo4j());
    auto physical = compiler.Compile(plan.value());
    ASSERT_TRUE(physical.ok()) << q << " -> " << physical.status();
    const Status s = VerifyCompiledPlan(qg, *physical.value());
    EXPECT_TRUE(s.ok()) << q << " -> " << s;
  }
}

TEST(VerifyCompiledPlanTest, RejectsVertexScanWithExtraIdColumn) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  query::EmbeddingMetaData meta;
  meta.AddIdColumn("a", query::EntryType::kVertex);
  meta.AddIdColumn("b", query::EntryType::kVertex);
  query::exec::VertexScanOp scan(meta, 1.0, query::MorphismSetting::Neo4j(),
                                 {}, qg.vertices()[0], {});
  // Memory, batch-layout and interruptibility claims are mandatory; stamp
  // derivable ones so the verifier reaches the layout check this test is
  // about.
  scan.set_memory_bound(query::exec::DeriveMemoryBound(scan));
  scan.set_batch_layout(query::exec::DeriveBatchLayout(scan.output_meta()));
  scan.set_interruptibility(query::exec::DeriveInterruptibility(scan));
  const Status s = VerifyCompiledPlan(qg, scan);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("one id column"), std::string::npos) << s;
}

TEST(VerifyCompiledPlanTest, RejectsJoinKeyColumnsDisagreeingWithChildren) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto make_scan = [&](const std::string& var, int index) {
    query::EmbeddingMetaData meta;
    meta.AddIdColumn(var, query::EntryType::kVertex);
    return std::make_shared<query::exec::VertexScanOp>(
        std::move(meta), 1.0, query::MorphismSetting::Neo4j(),
        std::vector<cypher::CnfClause>{}, qg.vertices()[index],
        std::vector<cypher::CnfClause>{});
  };
  auto left = make_scan("a", 0);
  auto right = make_scan("a", 0);
  left->set_memory_bound(query::exec::DeriveMemoryBound(*left));
  right->set_memory_bound(query::exec::DeriveMemoryBound(*right));
  left->set_batch_layout(query::exec::DeriveBatchLayout(left->output_meta()));
  right->set_batch_layout(
      query::exec::DeriveBatchLayout(right->output_meta()));
  left->set_interruptibility(query::exec::DeriveInterruptibility(*left));
  right->set_interruptibility(query::exec::DeriveInterruptibility(*right));
  auto merged = query::EmbeddingMetaData::Merge(left->output_meta(),
                                                right->output_meta());
  // Key column 1 does not hold `a` on either side (both bind it at 0).
  query::exec::JoinOp join(merged, 1.0, query::MorphismSetting::Neo4j(), {},
                           left, right, {"a"}, {1}, {1},
                           dataflow::JoinStrategy::kRepartition);
  join.set_memory_bound(query::exec::DeriveMemoryBound(join));
  join.set_batch_layout(query::exec::DeriveBatchLayout(join.output_meta()));
  join.set_interruptibility(query::exec::DeriveInterruptibility(join));
  const Status s = VerifyCompiledPlan(qg, join);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("key columns"), std::string::npos) << s;
}

TEST(VerifyCompiledPlanTest, RejectsFilterThatChangesLayout) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  query::EmbeddingMetaData child_meta;
  child_meta.AddIdColumn("a", query::EntryType::kVertex);
  auto child = std::make_shared<query::exec::VertexScanOp>(
      child_meta, 1.0, query::MorphismSetting::Neo4j(),
      std::vector<cypher::CnfClause>{}, qg.vertices()[0],
      std::vector<cypher::CnfClause>{});
  query::EmbeddingMetaData widened = child_meta;
  widened.AddIdColumn("b", query::EntryType::kVertex);
  query::exec::FilterOp filter(widened, 1.0, query::MorphismSetting::Neo4j(),
                               child, {});
  child->set_memory_bound(query::exec::DeriveMemoryBound(*child));
  filter.set_memory_bound(query::exec::DeriveMemoryBound(filter));
  child->set_batch_layout(
      query::exec::DeriveBatchLayout(child->output_meta()));
  filter.set_batch_layout(
      query::exec::DeriveBatchLayout(filter.output_meta()));
  child->set_interruptibility(query::exec::DeriveInterruptibility(*child));
  filter.set_interruptibility(query::exec::DeriveInterruptibility(filter));
  const Status s = VerifyCompiledPlan(qg, filter);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("changed the column layout"), std::string::npos)
      << s;
}

}  // namespace
}  // namespace gradoop::analysis
