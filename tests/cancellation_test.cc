// Cancellation safety (docs/cancellation.md): the CancellationToken's
// trip/poll/deadline semantics, the interruptibility claims PlanCompiler
// stamps and VerifyCompiledPlan re-derives (missing, tampered and
// unbounded claims are each rejected), the GQL008 unwind on deadlines
// and injected cancels in both engines, the GRADOOP_AUDIT_CANCELLATION
// runtime audit (including its abort on an unpolled loop), and the query
// log's cancellation attribution plus SetPath's failure path.
#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/plan_verifier.h"
#include "cypher/parser.h"
#include "dataflow/execution_context.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"
#include "query/exec/interruptibility.h"
#include "query/exec/memory_bound.h"
#include "query/exec/physical_operator.h"
#include "query/exec/plan_compiler.h"
#include "telemetry/query_log.h"
#include "telemetry/validate.h"

namespace gradoop::query {
namespace {

using common::CancellationToken;
using common::CancelReason;

cypher::QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = cypher::QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

epgm::LogicalGraph LdbcGraph() {
  ldbc::LdbcConfig cfg;
  cfg.scale_factor = 0.05;
  return ldbc::LdbcGenerator(cfg).Generate(dataflow::MakeContext());
}

const std::vector<std::string>& LdbcQueries() {
  static const std::vector<std::string> queries = {
      ldbc::Query1("X"), ldbc::Query2("X"), ldbc::Query3("X"),
      ldbc::Query4(),    ldbc::Query5(),    ldbc::Query6()};
  return queries;
}

void CollectOps(const exec::PhysicalOperatorPtr& op,
                std::vector<exec::PhysicalOperator*>* out) {
  out->push_back(op.get());
  for (const auto& child : op->children()) CollectOps(child, out);
}

// --- token semantics ---------------------------------------------------

TEST(CancellationTokenTest, DisabledTokenIsOneRelaxedLoad) {
  CancellationToken token;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.CheckCancelled());
  // Structural pin of the disabled-cost contract: the fast path never
  // reaches the poll counter, so a disarmed token records zero polls.
  EXPECT_EQ(token.polls(), 0u);
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_EQ(token.SecondsSinceTrip(), 0.0);
}

TEST(CancellationTokenTest, RequestCancelTripsAndResetClears) {
  CancellationToken token;
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.CheckCancelled());
  EXPECT_TRUE(token.CancelledOrExpired());
  EXPECT_EQ(token.reason(), CancelReason::kExplicit);
  EXPECT_STREQ(common::CancelReasonName(token.reason()), "cancelled");
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_EQ(token.polls(), 0u);
  EXPECT_FALSE(token.CheckCancelled());
}

TEST(CancellationTokenTest, FirstTripperWins) {
  CancellationToken token;
  token.RequestCancel();
  token.InjectCancelAfter(1);
  EXPECT_TRUE(token.CheckCancelled());
  // The explicit trip claimed the latch; the injected poll cannot
  // overwrite its attribution.
  EXPECT_EQ(token.reason(), CancelReason::kExplicit);
}

TEST(CancellationTokenTest, InjectionTripsAtTheConfiguredCheckpoint) {
  CancellationToken token;
  token.InjectCancelAfter(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(token.CheckCancelled()) << "poll " << i;
  }
  EXPECT_TRUE(token.CheckCancelled());  // the 5th poll trips
  EXPECT_EQ(token.reason(), CancelReason::kInjected);
  EXPECT_EQ(token.trip_poll(), 5u);
  EXPECT_EQ(token.polls_after_trip(), 0u);
  // Late polls (loops draining after the trip) are tallied for the audit.
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(token.CheckCancelled());
  EXPECT_EQ(token.polls_after_trip(), 7u);
}

TEST(CancellationTokenTest, ExpiredDeadlineTripsOnFirstPoll) {
  CancellationToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.CheckCancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_STREQ(common::CancelReasonName(token.reason()), "deadline");
}

TEST(CancellationTokenTest, DeadlineTripBackdatesToTheDeadline) {
  CancellationToken token;
  // The trip is observed 3 seconds late — the signature of an unpolled
  // loop. SecondsSinceTrip must measure from the deadline itself, not
  // from the poll that finally noticed, so the audit's latency budget
  // sees the full overrun.
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::seconds(3));
  EXPECT_TRUE(token.CancelledOrExpired());
  EXPECT_GE(token.SecondsSinceTrip(), 3.0);
}

TEST(CancellationTokenTest, FarDeadlineDoesNotTrip) {
  CancellationToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.CheckCancelled());
  EXPECT_FALSE(token.CancelledOrExpired());
  EXPECT_EQ(token.polls(), 1000u);  // armed: every poll is counted
}

// --- interruptibility claims -------------------------------------------

TEST(InterruptibilityTest, CompilerStampsBoundedClaimsOnEveryOperator) {
  CypherEngine engine(LdbcGraph());
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result.value().physical, nullptr);
  std::vector<exec::PhysicalOperator*> ops;
  CollectOps(result.value().physical, &ops);
  ASSERT_FALSE(ops.empty());
  for (exec::PhysicalOperator* op : ops) {
    ASSERT_TRUE(op->has_interruptibility()) << op->Describe();
    EXPECT_TRUE(op->interruptibility().bounded()) << op->Describe();
    EXPECT_EQ(op->interruptibility(), exec::DeriveInterruptibility(*op))
        << op->Describe();
  }
}

TEST(InterruptibilityTest, VerifierRejectsMissingClaim) {
  auto qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  // A structurally valid scan that skipped the annotation pass: the
  // memory and batch-layout claims are stamped so the verifier reaches
  // the interruptibility check.
  exec::VertexScanOp scan(meta, 1.0, MorphismSetting::Neo4j(), {},
                          qg.vertices()[0], {});
  scan.set_memory_bound(exec::DeriveMemoryBound(scan));
  scan.set_batch_layout(exec::DeriveBatchLayout(scan.output_meta()));
  const Status s = analysis::VerifyCompiledPlan(qg, scan);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing interruptibility claim"),
            std::string::npos)
      << s.message();
}

TEST(InterruptibilityTest, VerifierRejectsTamperedClaim) {
  CypherEngine engine(LdbcGraph());
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  exec::PhysicalOperatorPtr root = result.value().physical;
  ASSERT_NE(root, nullptr);
  exec::Interruptibility tampered = root->interruptibility();
  tampered.rows += 41;  // claims a coarser poll interval than derivable
  root->set_interruptibility(tampered);
  const Status s =
      analysis::VerifyCompiledPlan(result.value().query_graph, *root);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("claimed interruptibility"), std::string::npos)
      << s.message();
}

TEST(InterruptibilityTest, VerifierRejectsUnboundedClaim) {
  CypherEngine engine(LdbcGraph());
  auto result = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_TRUE(result.ok()) << result.status();
  exec::PhysicalOperatorPtr root = result.value().physical;
  ASSERT_NE(root, nullptr);
  root->set_interruptibility(exec::Interruptibility{});  // 0/0 = unbounded
  const Status s =
      analysis::VerifyCompiledPlan(result.value().query_graph, *root);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbounded checkpoint interval"),
            std::string::npos)
      << s.message();
}

// --- the GQL008 unwind -------------------------------------------------

TEST(CancellationEngineTest, ExpiredDeadlineUnwindsToGql008OnBothEngines) {
  CypherEngine engine(LdbcGraph());
  for (const auto mode : {PlannerOptions::ExecutionEngine::kRow,
                          PlannerOptions::ExecutionEngine::kBatch}) {
    engine.planner_options().engine = mode;
    const uint64_t resident_bytes =
        engine.graph().vertices().context()->accountant().current_bytes();
    engine.set_query_deadline(1e-9);  // expires before the first phase
    auto rejected = engine.Execute(ldbc::Query1("Alice"));
    ASSERT_FALSE(rejected.ok());
    EXPECT_NE(rejected.status().message().find("GQL008"), std::string::npos)
        << rejected.status();
    EXPECT_NE(rejected.status().message().find("query timed out"),
              std::string::npos)
        << rejected.status();
    // The cancelled query's accounting window drained: nothing it
    // charged outlives the unwind (graph-resident charges stay put).
    EXPECT_EQ(
        engine.graph().vertices().context()->accountant().current_bytes(),
        resident_bytes);
    // Disabling the deadline admits the same query unchanged.
    engine.set_query_deadline(0.0);
    auto admitted = engine.Execute(ldbc::Query1("Alice"));
    EXPECT_TRUE(admitted.ok()) << admitted.status();
  }
}

TEST(CancellationEngineTest, CancelBetweenQueriesIsANoOp) {
  CypherEngine engine(LdbcGraph());
  engine.Cancel();  // no query in flight: the next Execute re-arms
  EXPECT_TRUE(engine.cancellation().cancelled());
  auto result = engine.Execute(ldbc::Query1("Alice"));
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(engine.cancellation().cancelled());
}

TEST(CancellationEngineTest, CancelledQueryLogsAttribution) {
  CypherEngine engine(LdbcGraph());
  dataflow::ExecutionContext& ctx = *engine.graph().vertices().context();
  ctx.EnableTelemetry();
  engine.set_query_deadline(1e-9);
  auto rejected = engine.Execute(ldbc::Query1("Alice"));
  ASSERT_FALSE(rejected.ok());
  engine.set_query_deadline(0.0);
  const auto counters = ctx.telemetry().metrics().Snapshot().counters;
  auto cancelled = counters.find("query.cancelled");
  ASSERT_NE(cancelled, counters.end());
  EXPECT_GE(cancelled->second, 1u);
  const std::vector<std::string> lines = ctx.query_log().Lines();
  ASSERT_FALSE(lines.empty());
  const std::string& line = lines.back();
  EXPECT_NE(line.find("\"cancelled_phase\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"cancel_reason\": \"deadline\""), std::string::npos)
      << line;
  std::string error;
  EXPECT_TRUE(telemetry::ValidateQueryLogLine(line, &error)) << error;
  ctx.DisableTelemetry();
}

// --- the runtime audit -------------------------------------------------

TEST(CancellationAuditTest, InjectedCancelsUnwindCleanlyOverLdbc) {
  exec::CancellationAuditStats& stats =
      exec::CancellationAuditStats::Instance();
  stats.Reset();
  setenv("GRADOOP_AUDIT_CANCELLATION", "1", 1);
  CypherEngine engine(LdbcGraph());
  for (const auto mode : {PlannerOptions::ExecutionEngine::kRow,
                          PlannerOptions::ExecutionEngine::kBatch}) {
    engine.planner_options().engine = mode;
    for (const std::string& q : LdbcQueries()) {
      auto result = engine.Execute(q);
      // The probe's injected trip is internal; callers still get the
      // clean re-run's result.
      EXPECT_TRUE(result.ok()) << q << " -> " << result.status();
    }
  }
  unsetenv("GRADOOP_AUDIT_CANCELLATION");
  // One probe per query per engine; at least one checkpoint must have
  // actually tripped (a probe that never trips proves nothing), every
  // tripped probe was audited, and none violated its claims.
  EXPECT_EQ(stats.injections(), 12u);
  EXPECT_GT(stats.trips(), 0u);
  EXPECT_EQ(stats.checks(), stats.trips());
  EXPECT_EQ(stats.violations(), 0u);
}

TEST(CancellationAuditDeathTest, CatchesAnUnpolledLoop) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run = [] {
    setenv("GRADOOP_CANCELLATION_BUDGET", "0.05", 1);
    CypherEngine engine(LdbcGraph());
    auto result = engine.Execute(ldbc::Query1("Alice"));
    if (!result.ok() || result.value().physical == nullptr) return;
    dataflow::ExecutionContext& ctx = *engine.graph().vertices().context();
    CancellationToken& token = ctx.cancellation();
    token.Reset();
    // Seeded fixture: a kernel loop that runs a whole stage past an
    // already-expired deadline without ever polling. The trip backdates
    // to the deadline, so the overrun lands squarely on the audit's
    // latency budget.
    token.SetDeadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(200));
    volatile uint64_t sink = 0;
    const std::vector<uint64_t> src(4096, 7);
    for (uint64_t v : src) sink = sink + v;  // no CheckCancelled anywhere
    token.CancelledOrExpired();  // the next boundary finally notices
    exec::AuditCancelledQuery(*result.value().physical, ctx);
  };
  EXPECT_DEATH(run(), "cancellation audit FAILED");
}

TEST(CancellationAuditDeathTest, CatchesExcessPollsAfterTheTrip) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run = [] {
    CypherEngine engine(LdbcGraph());
    auto result = engine.Execute(ldbc::Query1("Alice"));
    if (!result.ok() || result.value().physical == nullptr) return;
    dataflow::ExecutionContext& ctx = *engine.graph().vertices().context();
    CancellationToken& token = ctx.cancellation();
    token.Reset();
    token.InjectCancelAfter(1);
    // A loop that keeps polling (and working) long after the trip blows
    // the allowance implied by the root's claimed poll interval.
    for (int i = 0; i < 200000; ++i) token.CheckCancelled();
    exec::AuditCancelledQuery(*result.value().physical, ctx);
  };
  EXPECT_DEATH(run(), "cancellation audit FAILED");
}

// --- query log sink ----------------------------------------------------

TEST(QueryLogSetPathTest, UnwritablePathReturnsStatus) {
  telemetry::QueryLog log;
  const Status bad = log.SetPath("/nonexistent-dir/deeper/query_log.jsonl");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("/nonexistent-dir/deeper/query_log.jsonl"),
            std::string::npos)
      << bad.message();
  // An empty path (close the sink) and a writable path both succeed.
  EXPECT_TRUE(log.SetPath("").ok());
  const std::string path =
      ::testing::TempDir() + "/cancellation_test_query_log.jsonl";
  EXPECT_TRUE(log.SetPath(path).ok());
  EXPECT_TRUE(log.SetPath("").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gradoop::query
