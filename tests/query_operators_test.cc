#include <gtest/gtest.h>

#include <algorithm>

#include "cypher/parser.h"
#include "cypher/query_graph.h"
#include "query/operators.h"

namespace gradoop::query {
namespace {

using cypher::QueryGraph;
using epgm::Edge;
using epgm::PropertyValue;
using epgm::Vertex;

dataflow::ExecutionContextPtr Ctx() { return dataflow::MakeContext(); }

QueryGraph QG(const std::string& text) {
  auto ast = cypher::ParseCypher(text);
  EXPECT_TRUE(ast.ok()) << ast.status();
  auto qg = QueryGraph::Build(ast.value());
  EXPECT_TRUE(qg.ok()) << qg.status();
  return std::move(qg).value();
}

// The kernels execute against layouts resolved by exec::PlanCompiler;
// these helpers build the same layouts by hand for kernel-level tests.
EmbeddingMetaData VertexScanMeta(const cypher::QueryVertex& qv,
                                 const std::set<std::string>& projection) {
  EmbeddingMetaData meta;
  meta.AddIdColumn(qv.variable, EntryType::kVertex);
  for (const std::string& key : projection) {
    meta.AddPropertyColumn(qv.variable, key);
  }
  return meta;
}

EmbeddingMetaData EdgeScanMeta(const QueryGraph& qg,
                               const cypher::QueryEdge& qe,
                               const std::set<std::string>& projection) {
  const std::string& src = qg.vertices()[qe.source].variable;
  const std::string& dst = qg.vertices()[qe.target].variable;
  EmbeddingMetaData meta;
  meta.AddIdColumn(src, EntryType::kVertex);
  meta.AddIdColumn(qe.variable, EntryType::kEdge);
  if (src != dst) meta.AddIdColumn(dst, EntryType::kVertex);
  for (const std::string& key : projection) {
    meta.AddPropertyColumn(qe.variable, key);
  }
  return meta;
}

EmbeddingSet ScanEdges(const dataflow::Dataset<Edge>& ds,
                       const QueryGraph& qg, const cypher::QueryEdge& qe,
                       const std::vector<cypher::CnfClause>& predicates,
                       const std::set<std::string>& projection,
                       const MorphismSetting& semantics =
                           MorphismSetting::Neo4j()) {
  const std::string& src = qg.vertices()[qe.source].variable;
  const std::string& dst = qg.vertices()[qe.target].variable;
  return SelectAndProjectEdges(ds, qe, predicates, semantics, src == dst,
                               EdgeScanMeta(qg, qe, projection));
}

EmbeddingSet Join(const EmbeddingSet& left, const EmbeddingSet& right,
                  const std::vector<std::string>& join_variables,
                  const MorphismSetting& semantics,
                  dataflow::JoinStrategy strategy =
                      dataflow::JoinStrategy::kRepartition) {
  std::vector<int> left_columns, right_columns;
  for (const std::string& var : join_variables) {
    left_columns.push_back(left.meta.IdColumn(var));
    right_columns.push_back(right.meta.IdColumn(var));
  }
  return JoinEmbeddings(left, right, left_columns, right_columns,
                        EmbeddingMetaData::Merge(left.meta, right.meta),
                        semantics, strategy);
}

using KeyRef = std::pair<std::string, std::string>;

EmbeddingSet ValueJoin(const EmbeddingSet& left, const EmbeddingSet& right,
                       const std::vector<KeyRef>& left_keys,
                       const std::vector<KeyRef>& right_keys,
                       const MorphismSetting& semantics) {
  std::vector<int> left_columns, right_columns;
  for (const auto& [var, key] : left_keys) {
    left_columns.push_back(left.meta.PropertyColumn(var, key));
  }
  for (const auto& [var, key] : right_keys) {
    right_columns.push_back(right.meta.PropertyColumn(var, key));
  }
  return ValueJoinEmbeddings(left, right, left_columns, right_columns,
                             EmbeddingMetaData::Merge(left.meta, right.meta),
                             semantics);
}

EmbeddingSet Expand(const EmbeddingSet& input,
                    const dataflow::Dataset<Edge>& edges,
                    const std::string& start, const std::string& path_var,
                    const std::string& end, int lower, int upper,
                    bool reverse, const MorphismSetting& semantics) {
  const int start_column = input.meta.IdColumn(start);
  const int bound_end_column = input.meta.IdColumn(end);
  EmbeddingMetaData meta = input.meta;
  meta.AddIdColumn(path_var, EntryType::kPath);
  if (bound_end_column < 0) meta.AddIdColumn(end, EntryType::kVertex);
  return ExpandEmbeddings(input, edges, start_column, bound_end_column, meta,
                          lower, upper, reverse, semantics);
}

std::vector<uint64_t> SortedIds(const EmbeddingSet& set,
                                const std::string& var) {
  const int col = set.meta.IdColumn(var);
  std::vector<uint64_t> ids;
  for (const Embedding& e : set.data.Collect()) ids.push_back(e.IdAt(col));
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ScanVerticesTest, FiltersLabelAndPredicateAndProjects) {
  auto ctx = Ctx();
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"name", "Alice"}, {"age", int64_t{30}}}),
      Vertex(2, "Person", {{"name", "Bob"}, {"age", int64_t{20}}}),
      Vertex(3, "City", {{"name", "Leipzig"}}),
  };
  auto ds = dataflow::Dataset<Vertex>::FromVector(ctx, vertices);
  QueryGraph qg = QG("MATCH (p:Person) WHERE p.age > 25 RETURN p.name");
  const auto& qv = qg.vertices()[0];
  auto result = SelectAndProjectVertices(
      ds, qv, qg.ElementPredicates("p"),
      VertexScanMeta(qv, qg.NeededProperties("p")));
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(result.meta.IdColumn("p")), 1u);
  // Projected properties: age (WHERE) and name (RETURN).
  const int name_col = result.meta.PropertyColumn("p", "name");
  ASSERT_GE(name_col, 0);
  EXPECT_EQ(rows[0].PropertyAt(name_col), PropertyValue("Alice"));
}

TEST(ScanVerticesTest, LabelAlternation) {
  auto ctx = Ctx();
  std::vector<Vertex> vertices = {Vertex(1, "Comment"), Vertex(2, "Post"),
                                  Vertex(3, "Person")};
  auto ds = dataflow::Dataset<Vertex>::FromVector(ctx, vertices);
  QueryGraph qg = QG("MATCH (m:Comment|Post) RETURN *");
  const auto& qv = qg.vertices()[0];
  auto result = SelectAndProjectVertices(ds, qv, {}, VertexScanMeta(qv, {}));
  EXPECT_EQ(SortedIds(result, "m"), (std::vector<uint64_t>{1, 2}));
}

TEST(ScanVerticesTest, ResidualClausePrunesRows) {
  // A fused filter clause evaluates inside the scan's emission loop.
  auto ctx = Ctx();
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"age", int64_t{30}}}),
      Vertex(2, "Person", {{"age", int64_t{20}}}),
  };
  auto ds = dataflow::Dataset<Vertex>::FromVector(ctx, vertices);
  QueryGraph qg = QG("MATCH (p:Person) WHERE p.age > 25 RETURN *");
  const auto& qv = qg.vertices()[0];
  // Hand the predicate to the kernel as a residual instead of an element
  // predicate: same rows must survive.
  auto result =
      SelectAndProjectVertices(ds, qv, {}, VertexScanMeta(qv, {"age"}),
                               qg.ElementPredicates("p"));
  EXPECT_EQ(SortedIds(result, "p"), (std::vector<uint64_t>{1}));
}

TEST(ScanEdgesTest, EmitsSourceEdgeTargetColumns) {
  auto ctx = Ctx();
  std::vector<Edge> edges = {
      Edge(10, "knows", 1, 2),
      Edge(11, "likes", 1, 3),
  };
  auto ds = dataflow::Dataset<Edge>::FromVector(ctx, edges);
  QueryGraph qg = QG("MATCH (a)-[e:knows]->(b) RETURN *");
  auto result = ScanEdges(ds, qg, qg.edges()[0], {}, {});
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(result.meta.IdColumn("a")), 1u);
  EXPECT_EQ(rows[0].IdAt(result.meta.IdColumn("e")), 10u);
  EXPECT_EQ(rows[0].IdAt(result.meta.IdColumn("b")), 2u);
  EXPECT_EQ(result.meta.TypeOf("e"), EntryType::kEdge);
}

TEST(ScanEdgesTest, UndirectedEmitsBothOrientations) {
  auto ctx = Ctx();
  std::vector<Edge> edges = {Edge(10, "knows", 1, 2)};
  auto ds = dataflow::Dataset<Edge>::FromVector(ctx, edges);
  QueryGraph qg = QG("MATCH (a)-[e:knows]-(b) RETURN *");
  auto result = ScanEdges(ds, qg, qg.edges()[0], {}, {});
  EXPECT_EQ(result.data.Collect().size(), 2u);
}

TEST(ScanEdgesTest, SelfLoopQueryEdge) {
  auto ctx = Ctx();
  std::vector<Edge> edges = {Edge(10, "likes", 1, 1), Edge(11, "likes", 1, 2)};
  auto ds = dataflow::Dataset<Edge>::FromVector(ctx, edges);
  QueryGraph qg = QG("MATCH (a)-[e:likes]->(a) RETURN *");
  auto result = ScanEdges(ds, qg, qg.edges()[0], {}, {});
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(result.meta.IdColumn("e")), 10u);
}

TEST(ScanEdgesTest, EdgePredicatePushdown) {
  auto ctx = Ctx();
  std::vector<Edge> edges = {
      Edge(10, "studyAt", 1, 2, {{"classYear", int64_t{2015}}}),
      Edge(11, "studyAt", 3, 2, {{"classYear", int64_t{2013}}}),
  };
  auto ds = dataflow::Dataset<Edge>::FromVector(ctx, edges);
  QueryGraph qg =
      QG("MATCH (a)-[s:studyAt]->(b) WHERE s.classYear > 2014 RETURN *");
  auto result = ScanEdges(ds, qg, qg.edges()[0], qg.ElementPredicates("s"),
                          qg.NeededProperties("s"));
  EXPECT_EQ(SortedIds(result, "s"), (std::vector<uint64_t>{10}));
}

// --- morphism checks --------------------------------------------------------

TEST(MorphismTest, VertexIsomorphismRejectsDuplicates) {
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  meta.AddIdColumn("b", EntryType::kVertex);
  Embedding dup;
  dup.AppendId(7);
  dup.AppendId(7);
  Embedding ok;
  ok.AppendId(7);
  ok.AppendId(8);
  EXPECT_FALSE(
      SatisfiesMorphism(dup, meta, MorphismSetting::FullIsomorphism()));
  EXPECT_TRUE(
      SatisfiesMorphism(ok, meta, MorphismSetting::FullIsomorphism()));
  EXPECT_TRUE(
      SatisfiesMorphism(dup, meta, MorphismSetting::FullHomomorphism()));
}

TEST(MorphismTest, EdgeIsomorphismIncludesPathEdges) {
  EmbeddingMetaData meta;
  meta.AddIdColumn("e1", EntryType::kEdge);
  meta.AddIdColumn("p", EntryType::kPath);
  Embedding conflict;
  conflict.AppendId(5);
  conflict.AppendPath({5, 20, 7});  // edge 5 reused inside the path
  Embedding ok;
  ok.AppendId(6);
  ok.AppendPath({5, 20, 7});
  const MorphismSetting neo = MorphismSetting::Neo4j();  // edge iso
  EXPECT_FALSE(SatisfiesMorphism(conflict, meta, neo));
  EXPECT_TRUE(SatisfiesMorphism(ok, meta, neo));
  // Path *vertices* do not participate in edge checks.
  Embedding vertex_overlap;
  vertex_overlap.AppendId(20);
  vertex_overlap.AppendPath({5, 20, 7});
  EXPECT_TRUE(SatisfiesMorphism(vertex_overlap, meta, neo));
}

TEST(MorphismTest, SharedVariableDuplicateColumnsAreNotConflicts) {
  // After a join on a shared variable the merged embedding physically
  // contains the id twice, but only one column is addressed by the meta.
  EmbeddingMetaData left, right;
  left.AddIdColumn("u", EntryType::kVertex);
  right.AddIdColumn("u", EntryType::kVertex);
  auto merged = EmbeddingMetaData::Merge(left, right);
  Embedding e;
  e.AppendId(40);
  e.AppendId(40);
  EXPECT_TRUE(
      SatisfiesMorphism(e, merged, MorphismSetting::FullIsomorphism()));
}

// --- join -------------------------------------------------------------------

EmbeddingSet MakeSet(dataflow::ExecutionContextPtr ctx,
                     const std::vector<std::vector<uint64_t>>& rows,
                     const std::vector<std::string>& vars,
                     const std::vector<EntryType>& types) {
  EmbeddingMetaData meta;
  for (size_t i = 0; i < vars.size(); ++i) meta.AddIdColumn(vars[i], types[i]);
  std::vector<Embedding> embeddings;
  for (const auto& row : rows) {
    Embedding e;
    for (uint64_t id : row) e.AppendId(id);
    embeddings.push_back(std::move(e));
  }
  return {dataflow::Dataset<Embedding>::FromVector(std::move(ctx),
                                                   std::move(embeddings)),
          std::move(meta)};
}

TEST(JoinEmbeddingsTest, JoinsOnSharedVariable) {
  auto ctx = Ctx();
  auto left = MakeSet(ctx, {{1, 10}, {2, 20}}, {"a", "b"},
                      {EntryType::kVertex, EntryType::kVertex});
  auto right = MakeSet(ctx, {{10, 100}, {30, 300}}, {"b", "c"},
                       {EntryType::kVertex, EntryType::kVertex});
  auto joined = Join(left, right, {"b"}, MorphismSetting::FullHomomorphism());
  auto rows = joined.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(joined.meta.IdColumn("a")), 1u);
  EXPECT_EQ(rows[0].IdAt(joined.meta.IdColumn("b")), 10u);
  EXPECT_EQ(rows[0].IdAt(joined.meta.IdColumn("c")), 100u);
}

TEST(JoinEmbeddingsTest, IsomorphismDropsConflicts) {
  auto ctx = Ctx();
  // Join a-b with b-c where c == a: homomorphism keeps, isomorphism drops.
  auto left = MakeSet(ctx, {{1, 10}}, {"a", "b"},
                      {EntryType::kVertex, EntryType::kVertex});
  auto right = MakeSet(ctx, {{10, 1}}, {"b", "c"},
                       {EntryType::kVertex, EntryType::kVertex});
  auto homo = Join(left, right, {"b"}, MorphismSetting::FullHomomorphism());
  EXPECT_EQ(homo.data.Collect().size(), 1u);
  auto iso = Join(left, right, {"b"}, MorphismSetting::FullIsomorphism());
  EXPECT_EQ(iso.data.Collect().size(), 0u);
}

TEST(JoinEmbeddingsTest, MultiColumnJoinKey) {
  auto ctx = Ctx();
  auto left = MakeSet(ctx, {{1, 2}, {1, 3}}, {"a", "b"},
                      {EntryType::kVertex, EntryType::kVertex});
  auto right = MakeSet(ctx, {{1, 2}, {1, 9}}, {"a", "b"},
                       {EntryType::kVertex, EntryType::kVertex});
  auto joined =
      Join(left, right, {"a", "b"}, MorphismSetting::FullHomomorphism());
  EXPECT_EQ(joined.data.Collect().size(), 1u);
}

TEST(JoinEmbeddingsTest, CartesianWithEmptyJoinVars) {
  auto ctx = Ctx();
  auto left = MakeSet(ctx, {{1}, {2}}, {"a"}, {EntryType::kVertex});
  auto right = MakeSet(ctx, {{10}, {20}, {30}}, {"b"}, {EntryType::kVertex});
  auto joined = Join(left, right, {}, MorphismSetting::FullHomomorphism());
  EXPECT_EQ(joined.data.Collect().size(), 6u);
}

TEST(JoinEmbeddingsTest, BroadcastMatchesRepartition) {
  auto ctx = Ctx();
  auto left = MakeSet(ctx, {{1, 10}, {2, 20}, {3, 10}}, {"a", "b"},
                      {EntryType::kVertex, EntryType::kVertex});
  auto right = MakeSet(ctx, {{10}}, {"b"}, {EntryType::kVertex});
  auto a = Join(left, right, {"b"}, MorphismSetting::FullHomomorphism(),
                dataflow::JoinStrategy::kRepartition);
  auto b = Join(left, right, {"b"}, MorphismSetting::FullHomomorphism(),
                dataflow::JoinStrategy::kBroadcast);
  EXPECT_EQ(a.data.Collect().size(), 2u);
  EXPECT_EQ(b.data.Collect().size(), 2u);
}

TEST(JoinEmbeddingsTest, ResidualClauseFiltersMergedRows) {
  auto ctx = Ctx();
  EmbeddingMetaData left_meta, right_meta;
  left_meta.AddIdColumn("a", EntryType::kVertex);
  left_meta.AddPropertyColumn("a", "x");
  right_meta.AddIdColumn("b", EntryType::kVertex);
  right_meta.AddPropertyColumn("b", "x");
  auto make = [](uint64_t id, int64_t x) {
    Embedding e;
    e.AppendId(id);
    e.AppendProperty(PropertyValue(x));
    return e;
  };
  EmbeddingSet left{
      dataflow::Dataset<Embedding>::FromVector(ctx, {make(1, 5)}), left_meta};
  EmbeddingSet right{dataflow::Dataset<Embedding>::FromVector(
                         ctx, {make(10, 5), make(11, 9)}),
                     right_meta};
  QueryGraph qg = QG("MATCH (a)-[e]->(b) WHERE a.x = b.x RETURN *");
  auto merged = EmbeddingMetaData::Merge(left_meta, right_meta);
  auto joined = JoinEmbeddings(left, right, {}, {}, merged,
                               MorphismSetting::FullHomomorphism(),
                               dataflow::JoinStrategy::kRepartition,
                               qg.CrossPredicates());
  // Cartesian 1x2, fused a.x = b.x keeps only the (1, 10) pair.
  auto rows = joined.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(merged.IdColumn("b")), 10u);
}

TEST(ValueJoinTest, JoinsOnPropertyValues) {
  auto ctx = Ctx();
  EmbeddingMetaData left_meta, right_meta;
  left_meta.AddIdColumn("a", EntryType::kVertex);
  left_meta.AddPropertyColumn("a", "x");
  right_meta.AddIdColumn("b", EntryType::kVertex);
  right_meta.AddPropertyColumn("b", "y");

  auto make = [](uint64_t id, PropertyValue v) {
    Embedding e;
    e.AppendId(id);
    e.AppendProperty(v);
    return e;
  };
  EmbeddingSet left{dataflow::Dataset<Embedding>::FromVector(
                        ctx, {make(1, PropertyValue(int64_t{7})),
                              make(2, PropertyValue(int64_t{9})),
                              make(3, PropertyValue::Null())}),
                    left_meta};
  EmbeddingSet right{dataflow::Dataset<Embedding>::FromVector(
                         ctx, {make(10, PropertyValue(int64_t{7})),
                               make(11, PropertyValue(int64_t{7})),
                               make(12, PropertyValue::Null())}),
                     right_meta};
  auto joined = ValueJoin(left, right, {{"a", "x"}}, {{"b", "y"}},
                          MorphismSetting::FullHomomorphism());
  // a=1 (x=7) joins b=10 and b=11; NULLs never join each other.
  auto rows = joined.data.Collect();
  ASSERT_EQ(rows.size(), 2u);
  for (const Embedding& e : rows) {
    EXPECT_EQ(e.IdAt(joined.meta.IdColumn("a")), 1u);
  }
}

TEST(ValueJoinTest, NumericTypesJoinAcrossIntAndDouble) {
  auto ctx = Ctx();
  EmbeddingMetaData left_meta, right_meta;
  left_meta.AddIdColumn("a", EntryType::kVertex);
  left_meta.AddPropertyColumn("a", "x");
  right_meta.AddIdColumn("b", EntryType::kVertex);
  right_meta.AddPropertyColumn("b", "y");
  Embedding l;
  l.AppendId(1);
  l.AppendProperty(PropertyValue(int64_t{2}));
  Embedding r;
  r.AppendId(2);
  r.AppendProperty(PropertyValue(2.0));
  EmbeddingSet left{dataflow::Dataset<Embedding>::FromVector(ctx, {l}),
                    left_meta};
  EmbeddingSet right{dataflow::Dataset<Embedding>::FromVector(ctx, {r}),
                     right_meta};
  auto joined = ValueJoin(left, right, {{"a", "x"}}, {{"b", "y"}},
                          MorphismSetting::FullHomomorphism());
  EXPECT_EQ(joined.data.Collect().size(), 1u);  // 2 == 2.0 (Cypher)
}

TEST(ValueJoinTest, MorphismStillEnforced) {
  auto ctx = Ctx();
  EmbeddingMetaData left_meta, right_meta;
  left_meta.AddIdColumn("a", EntryType::kVertex);
  left_meta.AddPropertyColumn("a", "x");
  right_meta.AddIdColumn("b", EntryType::kVertex);
  right_meta.AddPropertyColumn("b", "x");
  Embedding same;
  same.AppendId(1);
  same.AppendProperty(PropertyValue(int64_t{5}));
  EmbeddingSet left{dataflow::Dataset<Embedding>::FromVector(ctx, {same}),
                    left_meta};
  EmbeddingSet right{dataflow::Dataset<Embedding>::FromVector(ctx, {same}),
                     right_meta};
  auto homo = ValueJoin(left, right, {{"a", "x"}}, {{"b", "x"}},
                        MorphismSetting::FullHomomorphism());
  EXPECT_EQ(homo.data.Collect().size(), 1u);
  auto iso = ValueJoin(left, right, {{"a", "x"}}, {{"b", "x"}},
                       MorphismSetting::FullIsomorphism());
  EXPECT_EQ(iso.data.Collect().size(), 0u);  // both bind vertex 1
}

// --- select -----------------------------------------------------------------

TEST(SelectEmbeddingsTest, EvaluatesCrossPredicates) {
  auto ctx = Ctx();
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  meta.AddIdColumn("b", EntryType::kVertex);
  meta.AddPropertyColumn("a", "x");
  meta.AddPropertyColumn("b", "x");
  std::vector<Embedding> rows;
  for (int i = 0; i < 2; ++i) {
    Embedding e;
    e.AppendId(1);
    e.AppendId(2);
    e.AppendProperty(PropertyValue(int64_t{5}));
    e.AppendProperty(PropertyValue(int64_t{i == 0 ? 5 : 9}));
    rows.push_back(std::move(e));
  }
  EmbeddingSet input{
      dataflow::Dataset<Embedding>::FromVector(ctx, std::move(rows)), meta};
  QueryGraph qg = QG("MATCH (a)-[e]->(b) WHERE a.x = b.x RETURN *");
  auto result = SelectEmbeddings(input, qg.CrossPredicates());
  EXPECT_EQ(result.data.Collect().size(), 1u);
}

// --- expand -------------------------------------------------------------------

struct ExpandFixture {
  dataflow::ExecutionContextPtr ctx = Ctx();
  // Chain 1 -> 2 -> 3 -> 4 plus a back edge 3 -> 1.
  dataflow::Dataset<Edge> edges = dataflow::Dataset<Edge>::FromVector(
      ctx, {Edge(100, "knows", 1, 2), Edge(101, "knows", 2, 3),
            Edge(102, "knows", 3, 4), Edge(103, "knows", 3, 1)});

  EmbeddingSet InputAt(uint64_t vertex) {
    EmbeddingMetaData meta;
    meta.AddIdColumn("a", EntryType::kVertex);
    Embedding e;
    e.AppendId(vertex);
    return {dataflow::Dataset<Embedding>::FromVector(ctx, {e}), meta};
  }
};

TEST(ExpandEmbeddingsTest, ForwardBounds) {
  ExpandFixture fx;
  auto result = Expand(fx.InputAt(1), fx.edges, "a", "p", "b", 1, 2,
                       /*reverse=*/false, MorphismSetting::Neo4j());
  // 1 hop: 1->2. 2 hops: 1->2->3.
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 2u);
  const int b_col = result.meta.IdColumn("b");
  std::vector<uint64_t> ends;
  for (const auto& r : rows) ends.push_back(r.IdAt(b_col));
  std::sort(ends.begin(), ends.end());
  EXPECT_EQ(ends, (std::vector<uint64_t>{2, 3}));
}

TEST(ExpandEmbeddingsTest, PathColumnHoldsVia) {
  ExpandFixture fx;
  auto result = Expand(fx.InputAt(1), fx.edges, "a", "p", "b", 2, 2, false,
                       MorphismSetting::Neo4j());
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  const int p_col = result.meta.IdColumn("p");
  EXPECT_TRUE(rows[0].IsPathEntry(p_col));
  // via = edge 100, vertex 2, edge 101 (end vertex 3 excluded).
  EXPECT_EQ(rows[0].PathAt(p_col), (std::vector<uint64_t>{100, 2, 101}));
}

TEST(ExpandEmbeddingsTest, ZeroLowerBoundEmitsEmptyPath) {
  ExpandFixture fx;
  auto result = Expand(fx.InputAt(1), fx.edges, "a", "p", "b", 0, 1, false,
                       MorphismSetting::Neo4j());
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 2u);  // empty path (b=1) and 1-hop (b=2)
  const int p_col = result.meta.IdColumn("p");
  const int b_col = result.meta.IdColumn("b");
  bool saw_empty = false;
  for (const auto& r : rows) {
    if (r.PathAt(p_col).empty()) {
      saw_empty = true;
      EXPECT_EQ(r.IdAt(b_col), 1u);  // zero hops: end == start
    }
  }
  EXPECT_TRUE(saw_empty);
}

TEST(ExpandEmbeddingsTest, ZeroHopRejectedUnderVertexIsomorphism) {
  ExpandFixture fx;
  auto result = Expand(fx.InputAt(1), fx.edges, "a", "p", "b", 0, 0, false,
                       MorphismSetting::FullIsomorphism());
  // b would bind the same vertex as a: vertex isomorphism forbids it.
  EXPECT_EQ(result.data.Collect().size(), 0u);
}

TEST(ExpandEmbeddingsTest, ReverseExpansion) {
  ExpandFixture fx;
  auto result = Expand(fx.InputAt(3), fx.edges, "a", "p", "b", 1, 2,
                       /*reverse=*/true, MorphismSetting::Neo4j());
  // Against direction from 3: 2->3 (b=2), 1->2->3 (b=1).
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 2u);
  const int p_col = result.meta.IdColumn("p");
  for (const auto& r : rows) {
    const auto via = r.PathAt(p_col);
    if (via.size() == 3) {
      // Forward reading: edge 100 (1->2), vertex 2, edge 101 (2->3).
      EXPECT_EQ(via, (std::vector<uint64_t>{100, 2, 101}));
    }
  }
}

TEST(ExpandEmbeddingsTest, BoundEndClosesCycle) {
  ExpandFixture fx;
  // Input binds both a=1 and b=3; expansion must keep only paths 1 ~> 3.
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  meta.AddIdColumn("b", EntryType::kVertex);
  Embedding e;
  e.AppendId(1);
  e.AppendId(3);
  EmbeddingSet input{dataflow::Dataset<Embedding>::FromVector(fx.ctx, {e}),
                     meta};
  auto result = Expand(input, fx.edges, "a", "p", "b", 1, 3, false,
                       MorphismSetting::Neo4j());
  auto rows = result.data.Collect();
  ASSERT_EQ(rows.size(), 1u);  // 1->2->3 only
  EXPECT_EQ(rows[0].PathAt(result.meta.IdColumn("p")),
            (std::vector<uint64_t>{100, 2, 101}));
  // No new column was added for b.
  EXPECT_EQ(result.meta.id_column_count(), meta.id_column_count() + 1);
}

TEST(ExpandEmbeddingsTest, EdgeIsomorphismPreventsEdgeReuseInPath) {
  auto ctx = Ctx();
  // 1 <-> 2 two-cycle.
  auto edges = dataflow::Dataset<Edge>::FromVector(
      ctx, {Edge(100, "knows", 1, 2), Edge(101, "knows", 2, 1)});
  EmbeddingMetaData meta;
  meta.AddIdColumn("a", EntryType::kVertex);
  Embedding e;
  e.AppendId(1);
  EmbeddingSet input{dataflow::Dataset<Embedding>::FromVector(ctx, {e}),
                     meta};
  auto iso = Expand(input, edges, "a", "p", "b", 1, 4, false,
                    MorphismSetting::Neo4j());
  // Walks: 1->2, 1->2->1 — then edge 100 would repeat. 2 results.
  EXPECT_EQ(iso.data.Collect().size(), 2u);
  auto homo = Expand(input, edges, "a", "p", "b", 1, 4, false,
                     MorphismSetting::FullHomomorphism());
  // Edge homomorphism: walks of length 1..4 alternating freely = 4.
  EXPECT_EQ(homo.data.Collect().size(), 4u);
}

TEST(ExpandEmbeddingsTest, VertexIsomorphismPreventsRevisit) {
  ExpandFixture fx;
  // Cycle 1->2->3->1 via edge 103; under vertex iso, 3 hops ending back
  // at 1 must be rejected (unless the end is bound to 1 itself).
  auto iso = Expand(fx.InputAt(1), fx.edges, "a", "p", "b", 3, 3, false,
                    MorphismSetting::FullIsomorphism());
  // 1->2->3->4 is the only 3-hop survivor (1->2->3->1 revisits start).
  auto rows = iso.data.Collect();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].IdAt(iso.meta.IdColumn("b")), 4u);
}

}  // namespace
}  // namespace gradoop::query
