#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "epgm/csv_io.h"
#include "epgm/indexed_logical_graph.h"
#include "epgm/logical_graph.h"
#include "epgm/operators.h"

namespace gradoop::epgm {
namespace {

dataflow::ExecutionContextPtr Ctx(int workers = 4) {
  dataflow::ClusterConfig cfg;
  cfg.num_workers = workers;
  return dataflow::MakeContext(cfg);
}

LogicalGraph SmallGraph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices = {
      Vertex(1, "Person", {{"name", "Alice"}}),
      Vertex(2, "Person", {{"name", "Bob"}}),
      Vertex(3, "City", {{"name", "Leipzig"}}),
  };
  std::vector<Edge> edges = {
      Edge(10, "knows", 1, 2),
      Edge(11, "livesIn", 1, 3),
      Edge(12, "livesIn", 2, 3),
  };
  return LogicalGraph::FromVectors(std::move(ctx), GraphHead(100, "G"),
                                   std::move(vertices), std::move(edges));
}

TEST(LogicalGraphTest, CountsAndHead) {
  auto g = SmallGraph(Ctx());
  EXPECT_EQ(g.vertices().Count(), 3u);
  EXPECT_EQ(g.edges().Count(), 3u);
  EXPECT_EQ(g.head().label, "G");
}

TEST(IndexedGraphTest, SplitsByLabel) {
  auto g = SmallGraph(Ctx());
  auto idx = IndexedLogicalGraph::Build(g);
  EXPECT_EQ(idx.VerticesByLabel("Person").Count(), 2u);
  EXPECT_EQ(idx.VerticesByLabel("City").Count(), 1u);
  EXPECT_EQ(idx.VerticesByLabel("Ghost").Count(), 0u);
  EXPECT_EQ(idx.EdgesByLabel("knows").Count(), 1u);
  EXPECT_EQ(idx.EdgesByLabel("livesIn").Count(), 2u);
  EXPECT_EQ(idx.AllVertices().Count(), 3u);
  EXPECT_EQ(idx.AllEdges().Count(), 3u);
  EXPECT_EQ(idx.VertexLabels(), (std::vector<std::string>{"City", "Person"}));
}

TEST(IndexedGraphTest, PreservesPartitionAlignment) {
  auto g = SmallGraph(Ctx(4));
  auto idx = IndexedLogicalGraph::Build(g);
  EXPECT_EQ(idx.VerticesByLabel("Person").num_partitions(), 4);
}

// --- EPGM operators ---------------------------------------------------------

TEST(OperatorsTest, SubgraphFiltersAndVerifies) {
  auto g = SmallGraph(Ctx());
  // Keep only persons: livesIn edges dangle (City dropped) and must be
  // removed by verification; knows survives.
  auto sub = Subgraph(
      g, [](const Vertex& v) { return v.label == "Person"; },
      [](const Edge&) { return true; }, 200);
  EXPECT_EQ(sub.vertices().Count(), 2u);
  EXPECT_EQ(sub.edges().Count(), 1u);
  auto edges = sub.edges().Collect();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].label, "knows");
  // New graph membership recorded.
  EXPECT_EQ(edges[0].graph_ids.back(), 200u);
}

TEST(OperatorsTest, SubgraphEdgePredicate) {
  auto g = SmallGraph(Ctx());
  auto sub = Subgraph(
      g, [](const Vertex&) { return true; },
      [](const Edge& e) { return e.label == "livesIn"; }, 201);
  EXPECT_EQ(sub.edges().Count(), 2u);
  EXPECT_EQ(sub.vertices().Count(), 3u);
}

TEST(OperatorsTest, TransformRewritesElements) {
  auto g = SmallGraph(Ctx());
  auto t = Transform(
      g,
      [](const GraphHead& h) {
        GraphHead out = h;
        out.label = "Renamed";
        return out;
      },
      [](const Vertex& v) {
        Vertex out = v;
        out.properties.Set("seen", true);
        return out;
      },
      [](const Edge& e) { return e; });
  EXPECT_EQ(t.head().label, "Renamed");
  for (const Vertex& v : t.vertices().Collect()) {
    EXPECT_EQ(v.properties.Get("seen"), PropertyValue(true));
  }
}

TEST(OperatorsTest, CombineUnionsElementSets) {
  auto ctx = Ctx();
  auto g1 = LogicalGraph::FromVectors(
      ctx, GraphHead(1, "A"), {Vertex(1, "V"), Vertex(2, "V")},
      {Edge(10, "e", 1, 2)});
  auto g2 = LogicalGraph::FromVectors(
      ctx, GraphHead(2, "B"), {Vertex(2, "V"), Vertex(3, "V")},
      {Edge(10, "e", 1, 2), Edge(11, "e", 2, 3)});
  auto combined = Combine(g1, g2, 300);
  EXPECT_EQ(combined.vertices().Count(), 3u);  // 1,2,3 deduplicated
  EXPECT_EQ(combined.edges().Count(), 2u);
}

TEST(OperatorsTest, OverlapIntersects) {
  auto ctx = Ctx();
  auto g1 = LogicalGraph::FromVectors(
      ctx, GraphHead(1, "A"), {Vertex(1, "V"), Vertex(2, "V")},
      {Edge(10, "e", 1, 2)});
  auto g2 = LogicalGraph::FromVectors(
      ctx, GraphHead(2, "B"), {Vertex(2, "V"), Vertex(3, "V")}, {});
  auto overlap = Overlap(g1, g2, 301);
  auto vertices = overlap.vertices().Collect();
  ASSERT_EQ(vertices.size(), 1u);
  EXPECT_EQ(vertices[0].id, 2u);
  EXPECT_EQ(overlap.edges().Count(), 0u);
}

TEST(OperatorsTest, ExclusionSubtracts) {
  auto ctx = Ctx();
  auto g1 = LogicalGraph::FromVectors(
      ctx, GraphHead(1, "A"),
      {Vertex(1, "V"), Vertex(2, "V"), Vertex(3, "V")},
      {Edge(10, "e", 1, 2), Edge(11, "e", 2, 3)});
  auto g2 = LogicalGraph::FromVectors(ctx, GraphHead(2, "B"),
                                      {Vertex(2, "V")}, {});
  auto excl = Exclusion(g1, g2, 302);
  auto vertices = excl.vertices().Collect();
  ASSERT_EQ(vertices.size(), 2u);
  // Edges touching the excluded vertex are gone.
  EXPECT_EQ(excl.edges().Count(), 0u);
}

TEST(OperatorsTest, AggregateSetsHeadProperty) {
  auto g = SmallGraph(Ctx());
  auto agg = Aggregate(g, "vertexCount", VertexCountAggregate);
  EXPECT_EQ(agg.head().properties.Get("vertexCount"),
            PropertyValue(int64_t{3}));
  auto agg2 = Aggregate(agg, "edgeCount", EdgeCountAggregate);
  EXPECT_EQ(agg2.head().properties.Get("edgeCount"),
            PropertyValue(int64_t{3}));
}

TEST(OperatorsTest, SelectFiltersCollection) {
  auto ctx = Ctx();
  std::vector<GraphHead> heads = {GraphHead(1, "A", {{"score", int64_t{5}}}),
                                  GraphHead(2, "B", {{"score", int64_t{9}}})};
  std::vector<Vertex> vertices = {Vertex(10, "V", {}, {1}),
                                  Vertex(11, "V", {}, {2}),
                                  Vertex(12, "V", {}, {1, 2})};
  GraphCollection collection(
      dataflow::Dataset<GraphHead>::FromVector(ctx, heads),
      dataflow::Dataset<Vertex>::FromVector(ctx, vertices),
      dataflow::Dataset<Edge>::FromVector(ctx, {}));
  auto selected = Select(collection, [](const GraphHead& h) {
    return h.properties.Get("score").int_value() > 6;
  });
  EXPECT_EQ(selected.NumGraphs(), 1u);
  EXPECT_EQ(selected.vertices().Count(), 2u);  // 11 and 12
}

// --- CSV I/O ---------------------------------------------------------------

TEST(CsvTest, PropertyEncodingRoundTrip) {
  Properties props;
  props.Set("name", "Uni Leipzig");            // space
  props.Set("note", "a;b|c=d:e,f%g");          // every reserved char
  props.Set("year", int64_t{2014});
  props.Set("score", 2.5);
  props.Set("active", true);
  const std::string encoded = EncodeProperties(props);
  auto decoded = DecodeProperties(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().Get("name"), PropertyValue("Uni Leipzig"));
  EXPECT_EQ(decoded.value().Get("note"), PropertyValue("a;b|c=d:e,f%g"));
  EXPECT_EQ(decoded.value().Get("year"), PropertyValue(int64_t{2014}));
  EXPECT_EQ(decoded.value().Get("score"), PropertyValue(2.5));
  EXPECT_EQ(decoded.value().Get("active"), PropertyValue(true));
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string nasty = "a;b|c=d:e\nf%g,h";
  EXPECT_EQ(UnescapeCsvField(EscapeCsvField(nasty)), nasty);
}

TEST(CsvTest, GraphRoundTrip) {
  const std::string dir = "/tmp/gradoop_csv_test";
  std::filesystem::remove_all(dir);
  auto ctx = Ctx();
  auto g = SmallGraph(ctx);
  ASSERT_TRUE(WriteCsv(g, dir).ok());

  auto loaded = ReadCsvLogicalGraph(ctx, dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().head().id, 100u);
  EXPECT_EQ(loaded.value().head().label, "G");

  auto vertices = loaded.value().vertices().Collect();
  auto edges = loaded.value().edges().Collect();
  ASSERT_EQ(vertices.size(), 3u);
  ASSERT_EQ(edges.size(), 3u);
  std::sort(vertices.begin(), vertices.end(),
            [](const Vertex& a, const Vertex& b) { return a.id < b.id; });
  EXPECT_EQ(vertices[0].properties.Get("name"), PropertyValue("Alice"));
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.id < b.id; });
  EXPECT_EQ(edges[0].label, "knows");
  EXPECT_EQ(edges[0].source_id, 1u);
  EXPECT_EQ(edges[0].target_id, 2u);
  std::filesystem::remove_all(dir);
}

TEST(CsvTest, MissingDirectoryFails) {
  auto r = ReadCsvLogicalGraph(Ctx(), "/tmp/does_not_exist_gradoop");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, MalformedRowFails) {
  const std::string dir = "/tmp/gradoop_csv_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream g(dir + "/graphs.csv");
    g << "1;G;\n";
    std::ofstream v(dir + "/vertices.csv");
    v << "not-an-id;;Person;\n";
    std::ofstream e(dir + "/edges.csv");
  }
  auto r = ReadCsvLogicalGraph(Ctx(), dir);
  EXPECT_FALSE(r.ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gradoop::epgm
