#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace gradoop {
namespace {

// --- Status / Result ----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kPlanError, StatusCode::kExecutionError,
        StatusCode::kNotFound, StatusCode::kUnsupported,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GRADOOP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- Random ---------------------------------------------------------------

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, SeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    const int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfIsSkewed) {
  Random rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(100, 1.2)]++;
  // Rank 0 must dominate rank 50 by a wide margin.
  EXPECT_GT(counts[0], 10 * std::max(counts[50], 1));
  for (const auto& [k, v] : counts) EXPECT_LT(k, 100u);
}

TEST(RandomTest, PowerLawDegreesInRangeAndSkewed) {
  Random rng(13);
  uint64_t ones = 0, big = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t d = rng.NextPowerLawDegree(1, 100, 2.2);
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, 100u);
    if (d == 1) ++ones;
    if (d > 50) ++big;
  }
  EXPECT_GT(ones, 10000u);  // most mass at the minimum
  EXPECT_GT(big, 0u);       // but a heavy tail exists
}

// --- Strings ----------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(SplitString("a;b;", ';'),
            (std::vector<std::string>{"a", "b", ""}));
}

TEST(StringsTest, JoinRoundTrips) {
  const std::vector<std::string> parts = {"p1", "s", "u"};
  EXPECT_EQ(JoinStrings(parts, ", "), "p1, s, u");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  MATCH \t\n"), "MATCH");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("MATCH", "match"));
  EXPECT_TRUE(EqualsIgnoreCase("WhErE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "MATC"));
  EXPECT_FALSE(EqualsIgnoreCase("RETURN", "RETURM"));
}

TEST(StringsTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("return *"), "RETURN *");
}

}  // namespace
}  // namespace gradoop
