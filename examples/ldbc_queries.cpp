// Runs the paper's six LDBC evaluation queries (Appendix) on a generated
// LDBC-SNB-shaped social network and reports match counts, wall-clock
// times and the simulated distributed runtimes.
//
//   ./build/examples/ldbc_queries [scale_factor]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/timer.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

using namespace gradoop;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.25;

  dataflow::ClusterConfig cluster;
  cluster.num_workers = 16;  // the paper's full cluster
  auto ctx = dataflow::MakeContext(cluster);

  ldbc::LdbcConfig config;
  config.scale_factor = sf;
  ldbc::LdbcGenerator generator(config);
  std::cout << "Generating LDBC-shaped graph at scale factor " << sf
            << "...\n";
  auto graph = generator.Generate(ctx);
  std::cout << "  |V| = " << graph.vertices().Count()
            << ", |E| = " << graph.edges().Count() << "\n\n";

  query::CypherEngine engine(graph);
  const auto elements = generator.GenerateElements();
  const std::string name =
      ldbc::PickFirstName(elements, ldbc::Selectivity::kMedium);
  std::cout << "Parameterized firstName (medium selectivity): '" << name
            << "'\n\n";

  struct NamedQuery {
    const char* label;
    std::string text;
  };
  const NamedQuery queries[] = {
      {"Q1 all messages of a person", ldbc::Query1(name)},
      {"Q2 posts to a person's comments", ldbc::Query2(name)},
      {"Q3 friends that replied to a post", ldbc::Query3(name)},
      {"Q4 person profile", ldbc::Query4()},
      {"Q5 close friends", ldbc::Query5()},
      {"Q6 recommendation", ldbc::Query6()},
  };

  std::printf("%-36s %12s %10s %14s\n", "query", "matches", "wall [s]",
              "simulated [s]");
  for (const NamedQuery& q : queries) {
    ctx->tracker().Reset();
    Timer timer;
    auto count = engine.Count(q.text);
    if (!count.ok()) {
      std::cerr << q.label << " failed: " << count.status() << "\n";
      return 1;
    }
    std::printf("%-36s %12llu %10.2f %14.2f\n", q.label,
                static_cast<unsigned long long>(count.value()),
                timer.ElapsedSeconds(), ctx->tracker().SimulatedSeconds());
  }

  std::cout << "\nPlan for Q3:\n";
  auto plan = engine.Explain(ldbc::Query3(name));
  std::cout << (plan.ok() ? plan.value() : plan.status().ToString());
  return 0;
}
