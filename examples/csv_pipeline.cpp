// Mirrors the paper's Section 3 Java snippet:
//
//   LogicalGraph g = csvDataSource.getLogicalGraph();
//   GraphCollection matches = g.cypher(q, HOMO, ISO);
//   csvDataSink.write(matches);
//
// Generates a graph, persists it as Gradoop-style CSV, reloads it through
// the data source, runs a Cypher query and writes the match collection
// back through the data sink.
//
//   ./build/examples/csv_pipeline [directory]
#include <filesystem>
#include <iostream>

#include "epgm/csv_io.h"
#include "ldbc/ldbc_generator.h"
#include "query/cypher_engine.h"

using namespace gradoop;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/gradoop_csv_pipeline";
  const std::string input_dir = dir + "/input";
  const std::string output_dir = dir + "/matches";
  std::filesystem::remove_all(dir);

  auto ctx = dataflow::MakeContext();

  // Produce an input data set on disk.
  ldbc::LdbcConfig config;
  config.scale_factor = 0.05;
  auto generated = ldbc::LdbcGenerator(config).Generate(ctx);
  if (auto s = epgm::WriteCsv(generated, input_dir); !s.ok()) {
    std::cerr << "write failed: " << s << "\n";
    return 1;
  }
  std::cout << "Wrote input graph to " << input_dir << "\n";

  // csvDataSource.getLogicalGraph()
  auto graph = epgm::ReadCsvLogicalGraph(ctx, input_dir);
  if (!graph.ok()) {
    std::cerr << "read failed: " << graph.status() << "\n";
    return 1;
  }
  std::cout << "Loaded |V|=" << graph.value().vertices().Count()
            << " |E|=" << graph.value().edges().Count() << "\n";

  // g.cypher(q, HOMO, ISO)
  query::CypherEngine engine(graph.value());
  auto matches = engine.Match(
      "MATCH (p:Person)-[:studyAt]->(u:University) "
      "WHERE u.name = 'Uni Leipzig' "
      "RETURN p.firstName, p.lastName",
      query::MorphismSetting::Neo4j());
  if (!matches.ok()) {
    std::cerr << "match failed: " << matches.status() << "\n";
    return 1;
  }
  std::cout << "Matched " << matches.value().NumGraphs()
            << " students of Uni Leipzig\n";

  // csvDataSink.write(matches)
  if (auto s = epgm::WriteCsv(matches.value(), output_dir); !s.ok()) {
    std::cerr << "sink failed: " << s << "\n";
    return 1;
  }
  std::cout << "Wrote match collection to " << output_dir << "\n";
  return 0;
}
