// Demonstrates the configurable morphism semantics (§2.2/§2.3): unlike
// Neo4j's fixed HOMO-vertices/ISO-edges, the Gradoop operator takes both
// semantics as parameters, and the choice changes what counts as a match.
//
//   ./build/examples/morphism_semantics
#include <cstdio>

#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"

using namespace gradoop;  // NOLINT

int main() {
  // Alice <-> Eve <-> Bob friendship chain (mutual edges).
  auto ctx = dataflow::MakeContext();
  std::vector<epgm::Vertex> vertices = {
      epgm::Vertex(1, "Person", {{"name", "Alice"}}),
      epgm::Vertex(2, "Person", {{"name", "Eve"}}),
      epgm::Vertex(3, "Person", {{"name", "Bob"}}),
  };
  std::vector<epgm::Edge> edges = {
      epgm::Edge(10, "knows", 1, 2), epgm::Edge(11, "knows", 2, 1),
      epgm::Edge(12, "knows", 2, 3), epgm::Edge(13, "knows", 3, 2),
  };
  query::CypherEngine engine(epgm::LogicalGraph::FromVectors(
      ctx, epgm::GraphHead(0, "G"), vertices, edges));

  struct NamedSetting {
    const char* label;
    query::MorphismSetting setting;
  };
  const NamedSetting settings[] = {
      {"HOMO vertices / HOMO edges",
       query::MorphismSetting::FullHomomorphism()},
      {"HOMO vertices / ISO edges (Neo4j)", query::MorphismSetting::Neo4j()},
      {"ISO vertices / HOMO edges",
       {query::MatchSemantics::kIsomorphism,
        query::MatchSemantics::kHomomorphism}},
      {"ISO vertices / ISO edges",
       query::MorphismSetting::FullIsomorphism()},
  };

  const char* queries[] = {
      // Friends-of-friends: does Alice-Eve-Alice count?
      "MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c:Person) "
      "RETURN *",
      // Two-hop walks: may the same friendship be used twice?
      "MATCH (a:Person)-[e:knows*2..2]->(c:Person) RETURN *",
      // Two pattern edges over the same endpoints: under edge
      // homomorphism both bind the SAME data edge; edge isomorphism
      // requires two distinct parallel edges (none exist here).
      "MATCH (a:Person)-[e1:knows]->(b:Person), (a)-[e2:knows]->(b) "
      "RETURN *",
  };

  for (const char* query : queries) {
    std::printf("%s\n", query);
    for (const NamedSetting& s : settings) {
      auto count = engine.Count(query, s.setting);
      if (!count.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     count.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-36s -> %llu matches\n", s.label,
                  static_cast<unsigned long long>(count.value()));
    }
    std::printf("\n");
  }
  std::printf(
      "Homomorphic vertices admit walks that revisit a person (the "
      "friends-of-friends pitfall of §2.2); isomorphic edges forbid "
      "reusing a friendship within one match.\n");
  return 0;
}
