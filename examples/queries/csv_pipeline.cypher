// Students of one university (examples/csv_pipeline.cpp), over a graph
// loaded from CSV.
MATCH (p:Person)-[:studyAt]->(u:University)
WHERE u.name = 'Uni Leipzig'
RETURN p.firstName, p.lastName
