// Mutual friendships (examples/analytical_pipeline.cpp): pairs that
// know each other in both directions.
MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(a)
RETURN a.firstName, b.firstName
