// Three knows-edges fanning into the same person f. Under repartition
// joins (cypher_explain --no-broadcast) the second join's left input is
// already hash-partitioned on f by the first join, so the partitioning
// analysis elides its shuffle — EXPLAIN shows
// "shuffle=elided (co-partitioned on f)". CI pins this.
MATCH (p1)-[e1:knows]->(f), (p2)-[e2:knows]->(f), (p3)-[e3:knows]->(f)
RETURN *
