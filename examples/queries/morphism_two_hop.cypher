// Friend-of-friend chains (examples/morphism_semantics.cpp): whether b
// may equal a and whether e1 may equal e2 depends on the morphism
// configuration the query runs under.
MATCH (a:Person)-[e1:knows]->(b:Person)-[e2:knows]->(c:Person)
RETURN *
