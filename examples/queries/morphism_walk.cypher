// Two-hop walks (examples/morphism_semantics.cpp): may the same
// friendship edge be used twice within one variable-length path?
MATCH (a:Person)-[e:knows*2..2]->(c:Person) RETURN *
