// Two pattern edges over the same endpoints
// (examples/morphism_semantics.cpp): under edge homomorphism both bind
// the SAME data edge; edge isomorphism requires distinct parallel edges.
MATCH (a:Person)-[e1:knows]->(b:Person), (a)-[e2:knows]->(b)
RETURN *
