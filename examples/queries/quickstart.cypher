// The paper's Section 2.3 query (examples/quickstart.cpp): pairs of
// persons studying at Uni Leipzig with different genders, knowing each
// other within at most three friendship hops.
MATCH (p1:Person)-[s:studyAt]->(u:University),
      (p2:Person)-[:studyAt]->(u),
      (p1)-[e:knows*1..3]->(p2)
WHERE p1.gender <> p2.gender
  AND u.name = 'Uni Leipzig'
  AND s.classYear > 2014
RETURN p1.name, p2.name
