// Quickstart: build the paper's Figure 1 social network, run the Section
// 2.3 example query and inspect the resulting graph collection.
//
//   ./build/examples/quickstart
#include <iostream>

#include "epgm/logical_graph.h"
#include "query/cypher_engine.h"

namespace {

using namespace gradoop;  // NOLINT: example brevity
using epgm::Edge;
using epgm::GraphHead;
using epgm::Properties;
using epgm::Vertex;

epgm::LogicalGraph Figure1Graph(dataflow::ExecutionContextPtr ctx) {
  std::vector<Vertex> vertices;
  vertices.emplace_back(10, "Person",
                        Properties{{"name", "Alice"}, {"gender", "female"}});
  vertices.emplace_back(20, "Person",
                        Properties{{"name", "Eve"},
                                   {"gender", "female"},
                                   {"yob", int64_t{1984}}});
  vertices.emplace_back(30, "Person",
                        Properties{{"name", "Bob"}, {"gender", "male"}});
  vertices.emplace_back(40, "University", Properties{{"name", "Uni Leipzig"}});
  vertices.emplace_back(50, "City", Properties{{"name", "Leipzig"}});
  std::vector<Edge> edges;
  edges.emplace_back(1, "studyAt", 10, 40,
                     Properties{{"classYear", int64_t{2015}}});
  edges.emplace_back(2, "studyAt", 30, 40,
                     Properties{{"classYear", int64_t{2014}}});
  edges.emplace_back(3, "studyAt", 20, 40,
                     Properties{{"classYear", int64_t{2015}}});
  edges.emplace_back(4, "isLocatedIn", 40, 50);
  edges.emplace_back(5, "knows", 10, 20);
  edges.emplace_back(6, "knows", 20, 10);
  edges.emplace_back(7, "knows", 20, 30);
  edges.emplace_back(8, "knows", 30, 20);
  return epgm::LogicalGraph::FromVectors(std::move(ctx),
                                         GraphHead(100, "Community"),
                                         std::move(vertices), std::move(edges));
}

}  // namespace

int main() {
  // A simulated 4-worker cluster; the engine runs multi-threaded locally.
  dataflow::ClusterConfig cluster;
  cluster.num_workers = 4;
  auto ctx = dataflow::MakeContext(cluster);

  query::CypherEngine engine(Figure1Graph(ctx));

  // The paper's Section 2.3 query: pairs of persons studying at Uni
  // Leipzig with different genders, knowing each other within at most
  // three friendship hops.
  const std::string query =
      "MATCH (p1:Person)-[s:studyAt]->(u:University), "
      "      (p2:Person)-[:studyAt]->(u), "
      "      (p1)-[e:knows*1..3]->(p2) "
      "WHERE p1.gender <> p2.gender "
      "  AND u.name = 'Uni Leipzig' "
      "  AND s.classYear > 2014 "
      "RETURN p1.name, p2.name";

  std::cout << "Query:\n" << query << "\n\n";

  auto plan = engine.Explain(query);
  if (!plan.ok()) {
    std::cerr << "planning failed: " << plan.status() << "\n";
    return 1;
  }
  std::cout << "Execution plan:\n" << plan.value() << "\n";

  // Execute with the paper's default operator semantics: homomorphic
  // vertices, isomorphic edges — g.cypher(q, HOMO, ISO).
  auto matches = engine.Match(query, query::MorphismSetting::Neo4j());
  if (!matches.ok()) {
    std::cerr << "execution failed: " << matches.status() << "\n";
    return 1;
  }

  std::cout << "Found " << matches.value().NumGraphs()
            << " matching subgraphs:\n";
  for (const GraphHead& head : matches.value().heads().Collect()) {
    std::cout << "  graph " << head.id << ": p1.name="
              << head.properties.Get("p1.name").ToString()
              << " p2.name=" << head.properties.Get("p2.name").ToString()
              << "\n";
  }

  const auto& tracker = ctx->tracker();
  std::cout << "\nSimulated cluster execution: " << tracker.NumStages()
            << " dataflow stages, " << tracker.NetworkBytes()
            << " bytes shuffled, " << tracker.SimulatedSeconds()
            << "s simulated time\n";
  return 0;
}
