// Demonstrates the EPGM's composability (§2.1): Cypher pattern matching
// is one operator among many, and its output collection feeds further
// analytical operators — here: match -> select -> per-graph aggregation,
// plus a subgraph extraction on the input side.
//
//   ./build/examples/analytical_pipeline
#include <iostream>

#include "epgm/grouping.h"
#include "epgm/operators.h"
#include "ldbc/ldbc_generator.h"
#include "query/cypher_engine.h"

using namespace gradoop;  // NOLINT: example brevity

int main() {
  auto ctx = dataflow::MakeContext();
  ldbc::LdbcConfig config;
  config.scale_factor = 0.1;
  ldbc::LdbcGenerator generator(config);
  auto social_network = generator.Generate(ctx);

  // Step 1 — EPGM subgraph operator: restrict the network to persons and
  // friendships (the analyst's working set).
  auto friendships = epgm::Subgraph(
      social_network,
      [](const epgm::Vertex& v) { return v.label == "Person"; },
      [](const epgm::Edge& e) { return e.label == "knows"; },
      /*new_graph_id=*/9000);
  std::cout << "Friendship subgraph: " << friendships.vertices().Count()
            << " persons, " << friendships.edges().Count()
            << " knows edges\n";

  // Step 2 — Cypher pattern matching on the extracted subgraph: mutual
  // friendships (a knows b and b knows a).
  query::CypherEngine engine(friendships);
  auto matches = engine.Match(
      "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(a) "
      "RETURN a.firstName, b.firstName");
  if (!matches.ok()) {
    std::cerr << "match failed: " << matches.status() << "\n";
    return 1;
  }
  std::cout << "Mutual friendships: " << matches.value().NumGraphs()
            << " matches\n";

  // Step 3 — EPGM selection on the match collection: keep matches where
  // both people share a first name (head properties written by RETURN).
  auto same_name = epgm::Select(
      matches.value(), [](const epgm::GraphHead& head) {
        return head.properties.Get("a.firstName") ==
               head.properties.Get("b.firstName");
      });
  std::cout << "...between namesakes: " << same_name.NumGraphs() << "\n";

  // Step 4 — EPGM grouping: summarize the full network by label (how many
  // elements of each kind, how do the kinds connect).
  auto summary =
      epgm::GroupGraph(social_network, epgm::GroupingConfig{}, 9500,
                       /*id_base=*/1ull << 44);
  std::cout << "Schema summary: " << summary.vertices().Count()
            << " vertex groups, " << summary.edges().Count()
            << " edge groups\n";

  // Step 5 — aggregation back on the input graph: annotate the friendship
  // subgraph head with its element counts.
  auto annotated = epgm::Aggregate(friendships, "vertexCount",
                                   epgm::VertexCountAggregate);
  annotated =
      epgm::Aggregate(annotated, "edgeCount", epgm::EdgeCountAggregate);
  std::cout << "Annotated head: vertexCount="
            << annotated.head().properties.Get("vertexCount").ToString()
            << " edgeCount="
            << annotated.head().properties.Get("edgeCount").ToString()
            << "\n";
  return 0;
}
