// Reproduces Table 4 and Figure 3: query runtimes and relative speedups
// over 1..16 simulated workers, for the operational queries Q1-Q3 at
// three predicate selectivities (both scale factors) and the analytical
// queries Q4-Q6 (SF10* for all worker counts, SF100* at 16 workers —
// exactly the cells the paper reports).
//
// Execution iterates (sf, workers) in the outer loops so that only one
// engine lives at a time (see BenchHarness), collecting all cells before
// printing the table.
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

namespace {

const int kWorkerSteps[] = {1, 2, 4, 8, 16};
const ldbc::Selectivity kLevels[] = {ldbc::Selectivity::kLow,
                                     ldbc::Selectivity::kMedium,
                                     ldbc::Selectivity::kHigh};

// cell key: (query 0..5, selectivity 0..2 or -1, sf, workers)
using CellKey = std::tuple<int, int, double, int>;

}  // namespace

int main() {
  const double sf10 = MiniSf10();
  const double sf100 = MiniSf100();

  // Collect the work list.
  std::vector<CellKey> cells;
  for (double sf : {sf10, sf100}) {
    for (int workers : kWorkerSteps) {
      for (int q = 0; q < 3; ++q) {
        for (int level = 0; level < 3; ++level) {
          cells.emplace_back(q, level, sf, workers);
        }
      }
      for (int q = 3; q < 6; ++q) {
        // Analytical queries: full worker sweep at SF10*, 16 workers at
        // SF100* (the paper's populated cells).
        if (sf == sf10 || workers == 16) cells.emplace_back(q, -1, sf, workers);
      }
    }
  }

  BenchHarness harness;
  JsonReporter reporter("speedup");
  harness.set_reporter(&reporter);
  std::map<CellKey, RunResult> results;
  for (const CellKey& cell : cells) {
    const auto [q, level, sf, workers] = cell;
    const std::string query =
        level >= 0
            ? PaperQuery(q, harness.FirstName(sf, kLevels[level]))
            : PaperQuery(q, "");
    results[cell] = harness.Run(sf, workers, query);
  }

  std::printf(
      "Table 4 / Figure 3 — query runtimes in simulated seconds (speedup) "
      "over workers\n");
  std::printf("paper SF 10 -> sf=%.2f, SF 100 -> sf=%.2f (miniature)\n\n",
              sf10, sf100);
  std::printf("%-8s %-8s %-7s  %14s  %14s  %14s  %14s  %14s\n", "query",
              "select.", "scale", "1 worker", "2 workers", "4 workers",
              "8 workers", "16 workers");

  auto print_row = [&](int q, int level, double sf) {
    std::printf("%-8s %-8s %-7s", QueryLabel(q),
                level >= 0 ? ldbc::SelectivityName(kLevels[level]) : "-",
                SfLabel(sf));
    double base = -1.0;
    for (int workers : kWorkerSteps) {
      auto it = results.find(CellKey(q, level, sf, workers));
      if (it == results.end()) {
        std::printf("  %14s", "-");
        continue;
      }
      const double sec = it->second.simulated_sec;
      if (base < 0) base = sec;
      std::printf("  %7.2f (%4.1f)", sec, base / std::max(sec, 1e-9));
    }
    std::printf("\n");
  };

  for (int q = 0; q < 3; ++q) {
    for (int level = 0; level < 3; ++level) {
      print_row(q, level, sf10);
      print_row(q, level, sf100);
    }
    std::printf("\n");
  }
  for (int q = 3; q < 6; ++q) {
    print_row(q, -1, sf10);
    print_row(q, -1, sf100);
    std::printf("\n");
  }
  return 0;
}
