// Pins the cost of the telemetry surface. Disabled telemetry (the
// default) must be free: every instrumentation site then reduces to one
// relaxed atomic load, so the disabled-vs-enabled comparison isolates
// exactly what a profiling run pays (clock reads, span/metric appends
// under per-thread shard locks) — and the "off" row is the
// zero-overhead contract reviewers watch.
//
// Output: median wall ms over `iters` runs of LDBC Q1 per mode, plus
// the on/off ratio, mirrored into BENCH_telemetry_overhead.json (one
// record per mode, params: mode, sf, workers, query; wall_ms is the
// median, the remaining fields come from the median run's tracker).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

using gradoop::bench::BenchHarness;
using gradoop::bench::JsonReporter;
using gradoop::bench::RunResult;

double MedianWallMs(std::vector<double> wall_ms) {
  std::sort(wall_ms.begin(), wall_ms.end());
  return wall_ms[wall_ms.size() / 2];
}

}  // namespace

int main() {
  constexpr int kIters = 15;
  constexpr int kWarmup = 3;
  const double sf = gradoop::bench::MiniSf10();
  const int workers = 4;

  JsonReporter reporter("telemetry_overhead");
  BenchHarness harness;
  const std::string query = gradoop::ldbc::Query1(
      harness.FirstName(sf, gradoop::ldbc::Selectivity::kMedium));

  // One engine serves both modes; the mode toggle is exactly the switch
  // a user flips, so the comparison isolates the instrumentation.
  gradoop::query::CypherEngine& engine = harness.Engine(sf, workers);
  auto ctx = engine.graph().context();
  {
    gradoop::dataflow::ClusterConfig cluster;
    cluster.num_workers = workers;
    reporter.set_cluster(cluster);
  }

  char sf_text[32];
  std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);

  std::printf("telemetry overhead, LDBC Q1, sf %.2f, %d workers, %d iters\n",
              sf, workers, kIters);
  std::printf("%-10s %12s %10s\n", "telemetry", "median [ms]", "spans");

  double median_off = 0.0;
  double median_on = 0.0;
  for (const bool enabled : {false, true}) {
    if (enabled) {
      ctx->EnableTelemetry();
    } else {
      ctx->DisableTelemetry();
    }
    std::vector<double> wall_ms;
    RunResult last;
    size_t spans = 0;
    for (int i = 0; i < kWarmup + kIters; ++i) {
      ctx->telemetry().ResetData();
      last = harness.Run(sf, workers, query);
      if (i >= kWarmup) wall_ms.push_back(last.wall_sec * 1e3);
      spans = ctx->telemetry().tracer().NumSpans();
    }
    const double median = MedianWallMs(std::move(wall_ms));
    (enabled ? median_on : median_off) = median;
    last.wall_sec = median / 1e3;
    reporter.Record({{"mode", enabled ? "on" : "off"},
                     {"sf", sf_text},
                     {"workers", std::to_string(workers)},
                     {"query", query}},
                    last);
    std::printf("%-10s %12.3f %10zu\n", enabled ? "on" : "off", median,
                spans);
  }
  ctx->DisableTelemetry();

  std::printf("on/off ratio: %.3f (off is the default and must stay at "
              "the no-telemetry baseline)\n",
              median_off > 0.0 ? median_on / median_off : 0.0);
  return 0;
}
