// Ablation for the §3.3 embedding data structure: the paper's compact
// byte-array layout versus a naive object representation (vectors of
// typed fields). Measures append, merge, id access and wire size — the
// operations that dominate shuffle-heavy query execution.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "epgm/property_value.h"
#include "query/embedding.h"

namespace {

using gradoop::epgm::PropertyValue;
using gradoop::query::Embedding;

// Straw-man representation: one heap allocation per path and property,
// pointer-chasing on access, field-wise serialization.
struct NaiveEmbedding {
  std::vector<std::pair<bool, uint64_t>> ids;  // (is_path, id-or-index)
  std::vector<std::vector<uint64_t>> paths;
  std::vector<PropertyValue> props;

  void AppendId(uint64_t id) { ids.emplace_back(false, id); }
  void AppendPath(std::vector<uint64_t> via) {
    ids.emplace_back(true, paths.size());
    paths.push_back(std::move(via));
  }
  void AppendProperty(PropertyValue v) { props.push_back(std::move(v)); }
  uint64_t IdAt(int c) const { return ids[c].second; }

  static NaiveEmbedding Merge(const NaiveEmbedding& l,
                              const NaiveEmbedding& r) {
    NaiveEmbedding out = l;
    for (const auto& [is_path, payload] : r.ids) {
      if (is_path) {
        out.ids.emplace_back(true, out.paths.size() + payload);
      } else {
        out.ids.emplace_back(false, payload);
      }
    }
    out.paths.insert(out.paths.end(), r.paths.begin(), r.paths.end());
    out.props.insert(out.props.end(), r.props.begin(), r.props.end());
    return out;
  }

  size_t SerializedSize() const {
    size_t total = 3 * sizeof(uint32_t) + ids.size() * 9;
    for (const auto& p : paths) total += 4 + 8 * p.size();
    for (const auto& v : props) total += 4 + v.SerializedSize();
    return total;
  }
};

template <typename E>
E MakeSample(int columns) {
  E e;
  for (int i = 0; i < columns; ++i) e.AppendId(1000 + i);
  e.AppendPath({5, 20, 7, 30, 9});
  // Named locals instead of temporaries: inlining the PropertyValue
  // temporaries into push_back trips GCC 12's -Wmaybe-uninitialized on the
  // std::variant member (a known false positive).
  PropertyValue name("Alice");
  PropertyValue year(int64_t{2014});
  e.AppendProperty(std::move(name));
  e.AppendProperty(std::move(year));
  return e;
}

void BM_ByteArrayAppend(benchmark::State& state) {
  for (auto _ : state) {
    Embedding e;
    for (int i = 0; i < state.range(0); ++i) e.AppendId(i);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ByteArrayAppend)->Arg(4)->Arg(16);

void BM_NaiveAppend(benchmark::State& state) {
  for (auto _ : state) {
    NaiveEmbedding e;
    for (int i = 0; i < state.range(0); ++i) e.AppendId(i);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_NaiveAppend)->Arg(4)->Arg(16);

void BM_ByteArrayMerge(benchmark::State& state) {
  const Embedding left = MakeSample<Embedding>(state.range(0));
  const Embedding right = MakeSample<Embedding>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Embedding::Merge(left, right));
  }
}
BENCHMARK(BM_ByteArrayMerge)->Arg(4)->Arg(16);

void BM_NaiveMerge(benchmark::State& state) {
  const NaiveEmbedding left = MakeSample<NaiveEmbedding>(state.range(0));
  const NaiveEmbedding right = MakeSample<NaiveEmbedding>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveEmbedding::Merge(left, right));
  }
}
BENCHMARK(BM_NaiveMerge)->Arg(4)->Arg(16);

void BM_ByteArrayIdAccess(benchmark::State& state) {
  const Embedding e = MakeSample<Embedding>(16);
  uint64_t sum = 0;
  for (auto _ : state) {
    for (int c = 0; c < 16; ++c) sum += e.IdAt(c);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_ByteArrayIdAccess);

void BM_NaiveIdAccess(benchmark::State& state) {
  const NaiveEmbedding e = MakeSample<NaiveEmbedding>(16);
  uint64_t sum = 0;
  for (auto _ : state) {
    for (int c = 0; c < 16; ++c) sum += e.IdAt(c);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_NaiveIdAccess);

void BM_ByteArraySerializedSize(benchmark::State& state) {
  const Embedding e = MakeSample<Embedding>(8);
  for (auto _ : state) benchmark::DoNotOptimize(e.SerializedSize());
}
BENCHMARK(BM_ByteArraySerializedSize);

void BM_NaiveSerializedSize(benchmark::State& state) {
  const NaiveEmbedding e = MakeSample<NaiveEmbedding>(8);
  for (auto _ : state) benchmark::DoNotOptimize(e.SerializedSize());
}
BENCHMARK(BM_NaiveSerializedSize);

}  // namespace

// Console output plus a machine-readable BENCH_embedding.json, matching
// the harness benchmarks' JSON reports. An explicit --benchmark_out on
// the command line wins over the default file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_embedding.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
