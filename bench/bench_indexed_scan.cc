// Ablation for the §3.4 IndexedLogicalGraph: scanning one label through
// the per-label datasets versus filtering the union of all vertex/edge
// datasets. The index lets a labeled scan touch only its own records.
#include <cstdio>

#include "bench/bench_common.h"
#include "epgm/indexed_logical_graph.h"
#include "ldbc/ldbc_generator.h"

using namespace gradoop;  // NOLINT

namespace {

struct ScanCost {
  uint64_t records;
  double simulated_sec;
};

ScanCost MeasureIndexed(const epgm::IndexedLogicalGraph& indexed,
                        const std::string& label) {
  auto& tracker = indexed.context()->tracker();
  tracker.Reset();
  auto scan = indexed.VerticesByLabel(label).Filter(
      [](const epgm::Vertex&) { return true; }, "IndexedScan");
  (void)scan;
  return {tracker.TotalRecords(), tracker.SimulatedSeconds()};
}

ScanCost MeasureFullScan(const epgm::LogicalGraph& graph,
                         const std::string& label) {
  auto& tracker = graph.context()->tracker();
  tracker.Reset();
  auto scan = graph.vertices().Filter(
      [label](const epgm::Vertex& v) { return v.label == label; },
      "FullScanFilter");
  (void)scan;
  return {tracker.TotalRecords(), tracker.SimulatedSeconds()};
}

}  // namespace

int main() {
  auto ctx = dataflow::MakeContext();
  ldbc::LdbcConfig config;
  config.scale_factor = 2.0;
  auto graph = ldbc::LdbcGenerator(config).Generate(ctx);
  auto indexed = epgm::IndexedLogicalGraph::Build(graph);

  std::printf(
      "IndexedLogicalGraph ablation (§3.4) — per-label scan vs "
      "filter-over-union, |V|=%llu\n\n",
      static_cast<unsigned long long>(graph.vertices().Count()));
  std::printf("%-12s  %14s  %14s  %12s  %12s\n", "label", "records:index",
              "records:full", "sim:index", "sim:full");
  bench::JsonReporter reporter("indexed_scan");
  for (const std::string& label :
       {std::string("University"), std::string("Tag"),
        std::string("Person"), std::string("Comment")}) {
    const ScanCost indexed_cost = MeasureIndexed(indexed, label);
    const ScanCost full_cost = MeasureFullScan(graph, label);
    bench::RunResult result;
    result.records = indexed_cost.records;
    result.simulated_sec = indexed_cost.simulated_sec;
    reporter.Record({{"label", label}, {"scan", "indexed"}}, result);
    result.records = full_cost.records;
    result.simulated_sec = full_cost.simulated_sec;
    reporter.Record({{"label", label}, {"scan", "full"}}, result);
    std::printf("%-12s  %14llu  %14llu  %12.3f  %12.3f\n", label.c_str(),
                static_cast<unsigned long long>(indexed_cost.records),
                static_cast<unsigned long long>(full_cost.records),
                indexed_cost.simulated_sec, full_cost.simulated_sec);
  }
  std::printf(
      "\nExpectation: the indexed scan touches only the label's records; "
      "the full scan always reads the entire vertex set.\n");
  return 0;
}
