// Ablation for recurring-subquery scan sharing (the paper's future-work
// item, §6): identical edge scans within one query execute once. Q5 scans
// :knows three times, Q6 scans :hasInterest three times — sharing removes
// the duplicate dataflow stages.
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

namespace {

RunResult RunWithSharing(query::CypherEngine* engine,
                         const std::string& query, bool share) {
  engine->planner_options().share_scan_results = share;
  auto& tracker = engine->graph().context()->tracker();
  tracker.Reset();
  auto count = engine->Count(query);
  if (!count.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 count.status().ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.matches = count.value();
  r.records = tracker.TotalRecords();
  r.simulated_sec = tracker.SimulatedSeconds();
  return r;
}

}  // namespace

int main() {
  const double sf = MiniSf10();
  std::printf(
      "Recurring-subquery scan sharing (sf=%.2f, 16 workers)\n\n", sf);
  std::printf("%-8s %14s %14s %12s %12s %10s\n", "query", "records:off",
              "records:on", "sim:off", "sim:on", "matches");

  BenchHarness harness;
  JsonReporter reporter("scan_sharing");
  harness.set_reporter(&reporter);
  query::CypherEngine& engine = harness.Engine(sf, 16);
  const std::string name = harness.FirstName(sf, ldbc::Selectivity::kMedium);
  for (int q = 0; q < 6; ++q) {
    const std::string query = PaperQuery(q, name);
    const RunResult off = RunWithSharing(&engine, query, false);
    const RunResult on = RunWithSharing(&engine, query, true);
    reporter.Record({{"query", QueryLabel(q)}, {"share", "off"}}, off);
    reporter.Record({{"query", QueryLabel(q)}, {"share", "on"}}, on);
    if (off.matches != on.matches) {
      std::fprintf(stderr, "sharing changed results on %s!\n", QueryLabel(q));
      return 1;
    }
    std::printf("%-8s %14llu %14llu %12.2f %12.2f %10llu\n", QueryLabel(q),
                static_cast<unsigned long long>(off.records),
                static_cast<unsigned long long>(on.records),
                off.simulated_sec, on.simulated_sec,
                static_cast<unsigned long long>(off.matches));
  }
  engine.planner_options().share_scan_results = false;
  std::printf(
      "\nExpectation: Q5 (three :knows scans) and Q6 (three :hasInterest "
      "scans) process fewer records with sharing on; results identical.\n");
  return 0;
}
