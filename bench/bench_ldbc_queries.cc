// Per-query shuffle accounting for the six LDBC benchmark queries: how
// many exchanges each query runs, how many bytes enter them, and how
// much of that the partitioning analysis elides. Five modes:
//
//   default      broadcast joins allowed (the paper's configuration)
//   repartition  broadcast disabled, shuffle elision on — the mode the
//                partitioning analysis was built for
//   no-elide     broadcast disabled, elision off (ablation baseline)
//   batch        like default, executed by the columnar batch engine
//   batch-repart like repartition, batch engine (docs/vectorized.md)
//
// The repartition-vs-no-elide delta in shuffle_bytes is the analysis's
// measured win, and the default-vs-batch wall-clock delta the vectorized
// kernels'; CI archives BENCH_ldbc_queries.json alongside the other
// benchmark artifacts.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "telemetry/metrics_registry.h"

namespace {

using gradoop::bench::JsonReporter;
using gradoop::bench::MiniSf10;
using gradoop::bench::PaperQuery;
using gradoop::bench::QueryLabel;
using gradoop::bench::RunResult;

uint64_t Counter(const gradoop::telemetry::MetricsSnapshot& snap,
                 const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

}  // namespace

int main() {
  const double sf = MiniSf10();
  const int workers = 4;
  JsonReporter reporter("ldbc_queries");

  gradoop::ldbc::LdbcConfig config;
  config.scale_factor = sf;
  const gradoop::ldbc::LdbcElements elements =
      gradoop::ldbc::LdbcGenerator(config).GenerateElements();
  const std::string first_name = gradoop::ldbc::PickFirstName(
      elements, gradoop::ldbc::Selectivity::kMedium);

  using Engine = gradoop::query::PlannerOptions::ExecutionEngine;
  struct Mode {
    const char* name;
    bool allow_broadcast;
    bool elide_shuffles;
    Engine engine;
  };
  const Mode modes[] = {{"default", true, true, Engine::kRow},
                        {"repartition", false, true, Engine::kRow},
                        {"no-elide", false, false, Engine::kRow},
                        {"batch", true, true, Engine::kBatch},
                        {"batch-repart", false, true, Engine::kBatch}};

  std::printf("%-8s %-12s %9s %9s %8s %11s %7s %11s\n", "query", "mode",
              "matches", "sim [s]", "shuffles", "bytes", "elided",
              "saved bytes");
  for (const Mode& mode : modes) {
    gradoop::dataflow::ClusterConfig cluster;
    cluster.num_workers = workers;
    reporter.set_cluster(cluster);
    auto ctx = gradoop::dataflow::MakeContext(cluster);
    ctx->EnableTelemetry();
    gradoop::epgm::GraphHead head(0, "SocialNetwork");
    auto graph = gradoop::epgm::LogicalGraph::FromVectors(
        ctx, head, elements.vertices, elements.edges);
    gradoop::query::PlannerOptions options;
    options.allow_broadcast = mode.allow_broadcast;
    options.elide_shuffles = mode.elide_shuffles;
    options.engine = mode.engine;
    gradoop::query::CypherEngine engine(graph, options);

    for (int q = 0; q < 6; ++q) {
      const std::string query = PaperQuery(q, first_name);
      ctx->tracker().Reset();
      ctx->telemetry().metrics().Reset();
      gradoop::Timer timer;
      auto count = engine.Count(query);
      RunResult result;
      result.wall_sec = timer.ElapsedSeconds();
      if (!count.ok()) {
        std::fprintf(stderr, "%s (%s) failed: %s\n", QueryLabel(q),
                     mode.name, count.status().ToString().c_str());
        return 1;
      }
      result.matches = count.value();
      result.simulated_sec = ctx->tracker().SimulatedSeconds();
      result.network_bytes = ctx->tracker().NetworkBytes();
      result.spilled_bytes = ctx->tracker().SpilledBytes();
      result.records = ctx->tracker().TotalRecords();
      const auto snap = ctx->telemetry().metrics().Snapshot();
      result.shuffle_count = Counter(snap, "shuffle.count");
      result.shuffle_bytes = Counter(snap, "shuffle.bytes");
      result.shuffle_elided_count = Counter(snap, "shuffle.elided.count");
      result.shuffle_elided_bytes = Counter(snap, "shuffle.elided.bytes");

      char sf_text[32];
      std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);
      reporter.Record({{"sf", sf_text},
                       {"workers", std::to_string(workers)},
                       {"query", QueryLabel(q)},
                       {"mode", mode.name}},
                      result);
      std::printf("%-8s %-12s %9llu %9.3f %8llu %11llu %7llu %11llu\n",
                  QueryLabel(q) + 6, mode.name,
                  static_cast<unsigned long long>(result.matches),
                  result.simulated_sec,
                  static_cast<unsigned long long>(result.shuffle_count),
                  static_cast<unsigned long long>(result.shuffle_bytes),
                  static_cast<unsigned long long>(
                      result.shuffle_elided_count),
                  static_cast<unsigned long long>(
                      result.shuffle_elided_bytes));
    }
  }
  return 0;
}
