// Reproduces the appendix result-cardinality tables: match counts of
// Q1-Q6 per selectivity class and scale factor. The paper's shape: counts
// grow by orders of magnitude from high to low selectivity, and roughly
// 10x from SF 10 to SF 100; Q4-Q6 produce the largest result sets.
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

int main() {
  std::printf("Appendix — result cardinalities per query\n");
  std::printf("paper SF 10 -> sf=%.2f, SF 100 -> sf=%.2f\n\n", MiniSf10(),
              MiniSf100());

  BenchHarness harness;
  JsonReporter reporter("cardinality");
  harness.set_reporter(&reporter);
  const ldbc::Selectivity kLevels[] = {ldbc::Selectivity::kHigh,
                                       ldbc::Selectivity::kMedium,
                                       ldbc::Selectivity::kLow};
  const double kSfs[] = {MiniSf10(), MiniSf100()};

  // One engine at a time: collect per scale factor, print afterwards.
  uint64_t operational[3][2][3];
  uint64_t analytical[3][2];
  for (int s = 0; s < 2; ++s) {
    const double sf = kSfs[s];
    for (int q = 0; q < 3; ++q) {
      for (int l = 0; l < 3; ++l) {
        const std::string query =
            PaperQuery(q, harness.FirstName(sf, kLevels[l]));
        operational[q][s][l] = harness.Run(sf, 16, query).matches;
      }
    }
    for (int q = 3; q < 6; ++q) {
      analytical[q - 3][s] = harness.Run(sf, 16, PaperQuery(q, "")).matches;
    }
  }

  std::printf("Operational queries (parameterized firstName):\n");
  std::printf("%-8s %-7s %12s %12s %12s\n", "query", "scale", "high",
              "medium", "low");
  for (int q = 0; q < 3; ++q) {
    for (int s = 0; s < 2; ++s) {
      std::printf("%-8s %-7s", QueryLabel(q), SfLabel(kSfs[s]));
      for (int l = 0; l < 3; ++l) {
        std::printf(" %12llu",
                    static_cast<unsigned long long>(operational[q][s][l]));
      }
      std::printf("\n");
    }
  }

  std::printf("\nAnalytical queries:\n");
  std::printf("%-8s %-7s %14s\n", "query", "scale", "cardinality");
  for (int q = 3; q < 6; ++q) {
    for (int s = 0; s < 2; ++s) {
      std::printf("%-8s %-7s %14llu\n", QueryLabel(q), SfLabel(kSfs[s]),
                  static_cast<unsigned long long>(analytical[q - 3][s]));
    }
  }
  return 0;
}
