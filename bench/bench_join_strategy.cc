// Ablation for the physical join strategies discussed in §3.2 (Flink's
// optimizer choice): repartition-both-sides vs broadcast-the-build-side.
// Sweeps the build-side size against a fixed large probe side and reports
// the simulated time of each strategy — broadcast wins while the build
// side is small, repartition wins once it grows.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"
#include "dataflow/dataset.h"

using namespace gradoop::dataflow;  // NOLINT

namespace {

double JoinSimSeconds(int workers, int probe_records, int build_records,
                      JoinStrategy strategy) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  auto ctx = MakeContext(cfg);
  std::vector<int64_t> probe(probe_records);
  std::iota(probe.begin(), probe.end(), 0);
  std::vector<int64_t> build(build_records);
  std::iota(build.begin(), build.end(), 0);
  auto left = Dataset<int64_t>::FromVector(ctx, probe);
  auto right = Dataset<int64_t>::FromVector(ctx, build);
  ctx->tracker().Reset();
  left.HashJoin<int64_t>(
      right,
      [build_records](const int64_t& x) {
        return static_cast<uint64_t>(x % build_records);
      },
      [](const int64_t& x) { return static_cast<uint64_t>(x); },
      [](const int64_t& l, const int64_t&, std::vector<int64_t>* out) {
        out->push_back(l);
      },
      strategy);
  return ctx->tracker().SimulatedSeconds();
}

}  // namespace

int main() {
  const int kWorkers = 16;
  const int kProbe = 400000;
  std::printf(
      "Join strategy ablation — repartition vs broadcast (%d workers, "
      "probe side %d records)\n\n",
      kWorkers, kProbe);
  std::printf("%12s  %16s  %16s  %10s\n", "build side", "repartition [s]",
              "broadcast [s]", "winner");
  gradoop::bench::JsonReporter reporter("join_strategy");
  for (int build : {100, 1000, 10000, 50000, 100000, 200000, 400000}) {
    const double rep =
        JoinSimSeconds(kWorkers, kProbe, build, JoinStrategy::kRepartition);
    const double bc =
        JoinSimSeconds(kWorkers, kProbe, build, JoinStrategy::kBroadcast);
    std::printf("%12d  %16.3f  %16.3f  %10s\n", build, rep, bc,
                bc < rep ? "broadcast" : "repartition");
    gradoop::bench::RunResult result;
    result.simulated_sec = rep;
    reporter.Record({{"build", std::to_string(build)},
                     {"strategy", "repartition"}},
                    result);
    result.simulated_sec = bc;
    reporter.Record(
        {{"build", std::to_string(build)}, {"strategy", "broadcast"}},
        result);
  }
  std::printf(
      "\nExpectation: broadcast wins for small build sides (the probe side "
      "never moves); repartition wins once replicating the build side to "
      "every worker costs more than shuffling both sides.\n");
  return 0;
}
