// Ablation for the §3.2 greedy cost-based planner: statistics-driven
// bushy plans versus a textual-order left-deep baseline. Reports total
// records processed (intermediate-result volume) and simulated runtime;
// the greedy planner's whole purpose is to minimize the former.
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

namespace {

RunResult RunWithMode(query::CypherEngine* engine, const std::string& query,
                      query::PlannerOptions::Mode mode) {
  engine->planner_options().mode = mode;
  auto& tracker = engine->graph().context()->tracker();
  tracker.Reset();
  auto count = engine->Count(query);
  RunResult r;
  if (!count.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 count.status().ToString().c_str());
    std::exit(1);
  }
  r.matches = count.value();
  r.simulated_sec = tracker.SimulatedSeconds();
  r.records = tracker.TotalRecords();
  return r;
}

}  // namespace

int main() {
  const double sf = MiniSf10();
  std::printf(
      "Planner ablation — greedy (paper, §3.2) vs left-deep textual order vs exhaustive DP "
      "(sf=%.2f, 16 workers)\n\n",
      sf);

  BenchHarness harness;
  JsonReporter reporter("planner");
  harness.set_reporter(&reporter);
  query::CypherEngine& engine = harness.Engine(sf, 16);
  const std::string name = harness.FirstName(sf, ldbc::Selectivity::kHigh);

  std::printf("%-8s %14s %14s %14s %11s %11s %11s %9s\n", "query",
              "records:greedy", "records:left", "records:dp", "sim:greedy",
              "sim:left", "sim:dp", "matches");
  for (int q = 0; q < 6; ++q) {
    const std::string query = PaperQuery(q, name);
    const RunResult greedy = RunWithMode(
        &engine, query, query::PlannerOptions::Mode::kGreedy);
    const RunResult left = RunWithMode(
        &engine, query, query::PlannerOptions::Mode::kLeftDeep);
    const RunResult dp = RunWithMode(
        &engine, query, query::PlannerOptions::Mode::kDynamicProgramming);
    if (greedy.matches != left.matches || greedy.matches != dp.matches) {
      std::fprintf(stderr, "plan mismatch on %s\n", QueryLabel(q));
      return 1;
    }
    reporter.Record({{"query", QueryLabel(q)}, {"mode", "greedy"}}, greedy);
    reporter.Record({{"query", QueryLabel(q)}, {"mode", "left_deep"}}, left);
    reporter.Record({{"query", QueryLabel(q)}, {"mode", "dp"}}, dp);
    std::printf("%-8s %14llu %14llu %14llu %11.2f %11.2f %11.2f %9llu\n",
                QueryLabel(q),
                static_cast<unsigned long long>(greedy.records),
                static_cast<unsigned long long>(left.records),
                static_cast<unsigned long long>(dp.records),
                greedy.simulated_sec, left.simulated_sec, dp.simulated_sec,
                static_cast<unsigned long long>(greedy.matches));
  }
  engine.planner_options().mode = query::PlannerOptions::Mode::kGreedy;
  std::printf(
      "\nExpectation: greedy processes at most as many records as the "
      "left-deep plan, markedly fewer on selective queries; exhaustive DP "
      "matches or beats greedy on estimated cost (its occasional "
      "actual-records loss shows the estimates, not the search, are the "
      "binding constraint).\n");
  return 0;
}
