// Pins the cost of the lock-rank deadlock checker (common/lock_rank.h).
// The contract has two halves:
//
//   release: GRADOOP_LOCK_RANK_CHECKS is 0, the hooks are preprocessed
//     out of Mutex::lock/unlock, and a ranked common::Mutex costs
//     exactly a raw std::mutex. This binary hard-fails if the compile
//     flag disagrees with NDEBUG (the structural pin — a timing ratio
//     alone could hide a re-enabled checker behind noise, the flag
//     cannot), and reports the measured ranked/raw ratio alongside it.
//
//   debug: every acquisition additionally pays one
//     RankCheckAcquire/Release round trip. The checker core is compiled
//     into every build, so this binary measures that per-acquisition
//     cost directly in both build types — the "checker" row is what
//     Debug-tree mutexes pay on top of the raw lock.
//
// Output: ns/op per mode over `kIters` lock/unlock pairs, mirrored into
// BENCH_lock_rank_overhead.json (params: mode, rank_checks_compiled;
// wall_ms is the whole measured loop, records the iteration count).
#include <cstdint>
#include <cstdio>
#include <mutex>  // raw-baseline only; engine code must use common::Mutex
#include <string>

#include "bench/bench_common.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace {

using gradoop::bench::JsonReporter;
using gradoop::bench::RunResult;
using gradoop::common::LockRank;

// Keeps the critical sections from being optimized to nothing without
// adding measurable work of its own.
volatile uint64_t g_sink = 0;

template <typename Fn>
double MeasureNsPerOp(uint64_t iters, Fn&& op) {
  gradoop::Timer timer;
  for (uint64_t i = 0; i < iters; ++i) op();
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

void Report(JsonReporter* reporter, const char* mode, uint64_t iters,
            double ns_per_op) {
  RunResult result;
  result.wall_sec = ns_per_op * static_cast<double>(iters) / 1e9;
  result.records = iters;
  char ns_text[32];
  std::snprintf(ns_text, sizeof(ns_text), "%.2f", ns_per_op);
  reporter->Record(
      {{"mode", mode},
       {"ns_per_op", ns_text},
       {"rank_checks_compiled",
        gradoop::common::LockRankCheckingEnabled() ? "1" : "0"}},
      result);
  std::printf("%-10s %10.2f ns/op\n", mode, ns_per_op);
}

}  // namespace

int main() {
  constexpr uint64_t kIters = 2'000'000;

  // Structural pin: the checker must be compiled out exactly when NDEBUG
  // is set (unless GRADOOP_FORCE_LOCK_RANK deliberately overrides).
#if defined(NDEBUG) && !defined(GRADOOP_FORCE_LOCK_RANK_CHECKS)
  if (gradoop::common::LockRankCheckingEnabled()) {
    std::fprintf(stderr,
                 "FAIL: NDEBUG build but lock-rank checks are compiled "
                 "into Mutex::lock — the release fast path regressed\n");
    return 1;
  }
#else
  if (!gradoop::common::LockRankCheckingEnabled()) {
    std::fprintf(stderr,
                 "FAIL: checked build but lock-rank checks are compiled "
                 "out — Debug trees would silently stop checking\n");
    return 1;
  }
#endif

  std::printf("lock-rank overhead, %llu lock/unlock pairs per mode "
              "(rank checks compiled %s)\n",
              static_cast<unsigned long long>(kIters),
              gradoop::common::LockRankCheckingEnabled() ? "IN" : "OUT");

  JsonReporter reporter("lock_rank_overhead");

  std::mutex raw;
  const double raw_ns = MeasureNsPerOp(kIters, [&raw] {
    raw.lock();
    g_sink = g_sink + 1;
    raw.unlock();
  });
  Report(&reporter, "raw", kIters, raw_ns);

  gradoop::common::Mutex ranked(LockRank::kDataflow, "bench.lock_rank");
  const double ranked_ns = MeasureNsPerOp(kIters, [&ranked] {
    ranked.lock();
    g_sink = g_sink + 1;
    ranked.unlock();
  });
  Report(&reporter, "ranked", kIters, ranked_ns);

  // The checker round trip in isolation (always compiled, called
  // explicitly): what a Debug-tree acquisition pays on top of "raw".
  int tag = 0;
  const double checker_ns = MeasureNsPerOp(kIters, [&tag] {
    gradoop::common::RankCheckAcquire(LockRank::kDataflow, "bench.checker",
                                      &tag);
    g_sink = g_sink + 1;
    gradoop::common::RankCheckRelease(LockRank::kDataflow, &tag);
  });
  Report(&reporter, "checker", kIters, checker_ns);

  const double ratio = raw_ns > 0.0 ? ranked_ns / raw_ns : 0.0;
  std::printf("ranked/raw ratio: %.3f (%s)\n", ratio,
              gradoop::common::LockRankCheckingEnabled()
                  ? "checked build: ratio includes the rank checker"
                  : "release contract: hooks compiled out, ranked == raw "
                    "modulo noise");
  return 0;
}
