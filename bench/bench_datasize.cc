// Reproduces Figure 4: runtime growth with data volume on the full
// 16-worker cluster. The paper reports near-linear scaling from SF 10 to
// SF 100 (10x data -> ~10x runtime, e.g. Q6: 42s -> 411s).
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

int main() {
  std::printf(
      "Figure 4 — data size increase (16 workers), simulated seconds\n");
  std::printf("paper SF 10 -> sf=%.2f, SF 100 -> sf=%.2f\n\n", MiniSf10(),
              MiniSf100());
  std::printf("%-8s  %10s  %10s  %8s\n", "query", "SF10*", "SF100*",
              "ratio");

  BenchHarness harness;
  JsonReporter reporter("datasize");
  harness.set_reporter(&reporter);
  // One engine at a time: run all queries at SF10*, then all at SF100*
  // (Q1-Q3 use the low-selectivity parameter, as in the figure).
  RunResult small[6], big[6];
  for (int q = 0; q < 6; ++q) {
    small[q] = harness.Run(
        MiniSf10(), 16,
        PaperQuery(q, harness.FirstName(MiniSf10(), ldbc::Selectivity::kLow)));
  }
  for (int q = 0; q < 6; ++q) {
    big[q] = harness.Run(
        MiniSf100(), 16,
        PaperQuery(q,
                   harness.FirstName(MiniSf100(), ldbc::Selectivity::kLow)));
  }
  for (int q = 0; q < 6; ++q) {
    std::printf("%-8s  %10.2f  %10.2f  %7.1fx\n", QueryLabel(q),
                small[q].simulated_sec, big[q].simulated_sec,
                big[q].simulated_sec /
                    std::max(small[q].simulated_sec, 1e-9));
  }
  std::printf(
      "\nExpectation (paper): runtime increases roughly linearly with the "
      "10x data volume.\n");
  return 0;
}
