// Reproduces Figure 5: runtime vs predicate selectivity for Q1-Q3 on 4
// workers. The paper's finding: predicates only affect runtime when they
// inflate join cardinalities by orders of magnitude — Q3's runtime
// roughly doubles at low selectivity while Q1 is nearly flat.
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

int main() {
  const double sf = MiniSf10();
  std::printf(
      "Figure 5 — query selectivity (4 workers, sf=%.2f), simulated "
      "seconds\n\n",
      sf);
  std::printf("%-8s  %10s  %10s  %10s  %14s\n", "query", "high", "medium",
              "low", "low/high");

  BenchHarness harness;
  JsonReporter reporter("selectivity");
  harness.set_reporter(&reporter);
  const ldbc::Selectivity kLevels[] = {ldbc::Selectivity::kHigh,
                                       ldbc::Selectivity::kMedium,
                                       ldbc::Selectivity::kLow};
  for (int q = 0; q < 3; ++q) {
    double secs[3];
    for (int i = 0; i < 3; ++i) {
      const std::string query =
          PaperQuery(q, harness.FirstName(sf, kLevels[i]));
      secs[i] = harness.Run(sf, 4, query).simulated_sec;
    }
    std::printf("%-8s  %10.2f  %10.2f  %10.2f  %13.2fx\n", QueryLabel(q),
                secs[0], secs[1], secs[2], secs[2] / std::max(secs[0], 1e-9));
  }
  std::printf(
      "\nExpectation (paper): Q3 grows markedly towards low selectivity "
      "(superlinear intermediate growth); Q1/Q2 stay nearly flat.\n");
  return 0;
}
