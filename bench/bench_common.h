#ifndef GRADOOP_BENCH_BENCH_COMMON_H_
#define GRADOOP_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benchmarks. Scale-factor
// mapping (see DESIGN.md): the paper's LDBC SF 10 corresponds to our
// miniature sf = 1.0 and SF 100 to sf = 10.0, preserving the 10x ratio.
// "Workers" is the simulated cluster size of the dataflow cost model
// (1..16, as in the paper); runtimes reported as `sim [s]` are simulated
// distributed execution times under that model, wall-clock is the real
// local multi-threaded execution.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/build_info.h"
#include "common/timer.h"
#include "dataflow/cluster_config.h"
#include "ldbc/ldbc_generator.h"
#include "ldbc/queries.h"
#include "query/cypher_engine.h"

namespace gradoop::bench {

// The miniature stand-ins for the paper's scale factors.
inline double MiniSf10() {
  const char* env = std::getenv("GRADOOP_BENCH_SF");
  return env != nullptr ? std::atof(env) : 1.0;
}
inline double MiniSf100() { return 10.0 * MiniSf10(); }

inline const char* SfLabel(double sf) {
  return sf >= MiniSf100() ? "SF100*" : "SF10*";
}

struct RunResult {
  uint64_t matches = 0;
  double simulated_sec = 0.0;
  double wall_sec = 0.0;
  uint64_t network_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t records = 0;
  // Shuffle accounting (telemetry counters; zero when the producing
  // benchmark runs without telemetry). `shuffle_bytes` counts every
  // serialized byte entering an exchange, local channels included;
  // elided figures record shuffles the partitioning analysis proved
  // unnecessary (docs/partitioning.md).
  uint64_t shuffle_count = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t shuffle_elided_count = 0;
  uint64_t shuffle_elided_bytes = 0;
};

// Machine-readable counterpart of each benchmark's console table.
// Collects one record per measurement and writes BENCH_<name>.json into
// the working directory (override the directory with
// GRADOOP_BENCH_JSON_DIR) when flushed or destroyed. Schema (see
// docs/observability.md, "BENCH_*.json"):
//
//   {"bench": "selectivity",                    benchmark name
//    "git_sha": "cfb7e2b",                      commit (configure-time)
//    "build_type": "RelWithDebInfo",
//    "cluster": {"workers": 4,                  last simulated cluster
//                "worker_memory_bytes": 4194304,
//                "network_bytes_per_sec": 25000000.0,
//                "seconds_per_record": 0.00005},
//    "records": [{"params": {"query": "...", "workers": "4"},
//                 "matches": 35, "wall_ms": 1.201,
//                 "simulated_sec": 0.84, "network_bytes": 10284,
//                 "spilled_bytes": 0, "records": 1234}]}
//
// "cluster" is absent until set_cluster is called; per-record worker
// counts live in each record's params (benchmarks sweep them).
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}
  ~JsonReporter() { Flush(); }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  // One measurement; `params` are free-form benchmark coordinates
  // ("query", "workers", "sf", ...).
  void Record(std::map<std::string, std::string> params,
              const RunResult& result) {
    entries_.emplace_back(std::move(params), result);
  }

  // Simulated-cluster shape stamped into the artifact header (the last
  // call before Flush wins; BenchHarness calls this per engine build).
  void set_cluster(const dataflow::ClusterConfig& cluster) {
    cluster_ = cluster;
    has_cluster_ = true;
  }

  void Flush() {
    if (entries_.empty()) return;
    std::string dir = ".";
    if (const char* env = std::getenv("GRADOOP_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "JsonReporter: cannot write '%s'\n",
                   path.c_str());
      return;
    }
    out << "{\"bench\": \"" << Escape(name_) << "\", \"git_sha\": \""
        << Escape(kBuildGitSha) << "\", \"build_type\": \""
        << Escape(kBuildType) << "\", ";
    if (has_cluster_) {
      char rate[32], per_record[32];
      std::snprintf(rate, sizeof(rate), "%.1f",
                    cluster_.network_bytes_per_sec);
      std::snprintf(per_record, sizeof(per_record), "%.8f",
                    cluster_.seconds_per_record);
      out << "\"cluster\": {\"workers\": " << cluster_.num_workers
          << ", \"worker_memory_bytes\": " << cluster_.worker_memory_bytes
          << ", \"network_bytes_per_sec\": " << rate
          << ", \"seconds_per_record\": " << per_record << "}, ";
    }
    out << "\"records\": [";
    bool first_entry = true;
    for (const auto& [params, r] : entries_) {
      out << (first_entry ? "\n" : ",\n") << "  {\"params\": {";
      first_entry = false;
      bool first_param = true;
      for (const auto& [key, value] : params) {
        if (!first_param) out << ", ";
        first_param = false;
        out << "\"" << Escape(key) << "\": \"" << Escape(value) << "\"";
      }
      char wall_ms[32];
      std::snprintf(wall_ms, sizeof(wall_ms), "%.3f", r.wall_sec * 1e3);
      char sim_sec[32];
      std::snprintf(sim_sec, sizeof(sim_sec), "%.6f", r.simulated_sec);
      out << "}, \"matches\": " << r.matches << ", \"wall_ms\": " << wall_ms
          << ", \"simulated_sec\": " << sim_sec
          << ", \"network_bytes\": " << r.network_bytes
          << ", \"spilled_bytes\": " << r.spilled_bytes
          << ", \"records\": " << r.records
          << ", \"shuffle_count\": " << r.shuffle_count
          << ", \"shuffle_bytes\": " << r.shuffle_bytes
          << ", \"shuffle_elided_count\": " << r.shuffle_elided_count
          << ", \"shuffle_elided_bytes\": " << r.shuffle_elided_bytes
          << "}";
    }
    out << "\n]}\n";
    entries_.clear();
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }

 private:
  static std::string Escape(const std::string& text) {
    std::string out;
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::map<std::string, std::string>, RunResult>>
      entries_;
  dataflow::ClusterConfig cluster_;
  bool has_cluster_ = false;
};

// Engine cache for the current (scale factor, worker count). Only ONE
// engine is held at a time — a full engine at the larger scale factor is
// hundreds of MB (graph + label index + statistics), and the benchmark
// grids would otherwise accumulate ten of them. Benchmarks iterate with
// (sf, workers) as the OUTER loops so eviction stays cheap.
class BenchHarness {
 public:
  // Every Run() is mirrored into `reporter` (params: sf, workers, query)
  // in addition to the caller's console table. Not owned.
  void set_reporter(JsonReporter* reporter) { reporter_ = reporter; }

  query::CypherEngine& Engine(double sf, int workers) {
    const auto key = std::make_pair(sf, workers);
    if (engine_ == nullptr || engine_key_ != key) {
      engine_.reset();  // free the previous engine before building anew
      dataflow::ClusterConfig cluster;
      cluster.num_workers = workers;
      if (reporter_ != nullptr) reporter_->set_cluster(cluster);
      auto ctx = dataflow::MakeContext(cluster);
      const ldbc::LdbcElements& elements = Elements(sf);
      epgm::GraphHead head(0, "SocialNetwork");
      auto graph = epgm::LogicalGraph::FromVectors(
          std::move(ctx), head, elements.vertices, elements.edges);
      engine_ = std::make_unique<query::CypherEngine>(std::move(graph));
      engine_key_ = key;
    }
    return *engine_;
  }

  // Generated elements at scale factor `sf` (generated once, shared by
  // all worker configurations and selectivity lookups).
  const ldbc::LdbcElements& Elements(double sf) {
    auto it = elements_.find(sf);
    if (it == elements_.end()) {
      ldbc::LdbcConfig config;
      config.scale_factor = sf;
      it = elements_
               .emplace(sf, ldbc::LdbcGenerator(config).GenerateElements())
               .first;
    }
    return it->second;
  }

  // firstName realizing `level` at scale factor `sf`.
  const std::string& FirstName(double sf, ldbc::Selectivity level) {
    auto key = std::make_pair(sf, static_cast<int>(level));
    auto it = names_.find(key);
    if (it == names_.end()) {
      it = names_.emplace(key, ldbc::PickFirstName(Elements(sf), level))
               .first;
    }
    return it->second;
  }

  // Runs `query`, measuring the simulated distributed time of exactly
  // this query's dataflow (the engine's tracker is reset first).
  RunResult Run(double sf, int workers, const std::string& query) {
    query::CypherEngine& engine = Engine(sf, workers);
    auto& tracker = engine.graph().context()->tracker();
    tracker.Reset();
    Timer timer;
    auto count = engine.Count(query);
    RunResult result;
    result.wall_sec = timer.ElapsedSeconds();
    if (!count.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   count.status().ToString().c_str());
      std::exit(1);
    }
    result.matches = count.value();
    result.simulated_sec = tracker.SimulatedSeconds();
    result.network_bytes = tracker.NetworkBytes();
    result.spilled_bytes = tracker.SpilledBytes();
    result.records = tracker.TotalRecords();
    if (reporter_ != nullptr) {
      char sf_text[32];
      std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);
      reporter_->Record({{"sf", sf_text},
                         {"workers", std::to_string(workers)},
                         {"query", query}},
                        result);
    }
    return result;
  }

 private:
  std::unique_ptr<query::CypherEngine> engine_;
  std::pair<double, int> engine_key_{-1.0, -1};
  std::map<double, ldbc::LdbcElements> elements_;
  std::map<std::pair<double, int>, std::string> names_;
  JsonReporter* reporter_ = nullptr;
};

inline const char* QueryLabel(int index) {
  static const char* kLabels[] = {"Query 1", "Query 2", "Query 3",
                                  "Query 4", "Query 5", "Query 6"};
  return kLabels[index];
}

// Queries 1..6 with a given firstName parameter (ignored by Q4-Q6).
inline std::string PaperQuery(int index, const std::string& first_name) {
  switch (index) {
    case 0:
      return ldbc::Query1(first_name);
    case 1:
      return ldbc::Query2(first_name);
    case 2:
      return ldbc::Query3(first_name);
    case 3:
      return ldbc::Query4();
    case 4:
      return ldbc::Query5();
    default:
      return ldbc::Query6();
  }
}

}  // namespace gradoop::bench

#endif  // GRADOOP_BENCH_BENCH_COMMON_H_
