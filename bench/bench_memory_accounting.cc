// Pins the cost of per-query memory accounting (docs/memory.md).
// Accounting is driver-thread-only bookkeeping — a handful of integer
// adds per operator and per staged join side — so the enabled run must
// stay at the disabled baseline (ratio ~= 1.0 modulo noise); the
// disabled run must additionally leave the accountant untouched (the
// structural pin below: peak stays 0, a timing ratio alone could hide a
// regression behind noise).
//
// Output: median wall ms over `kIters` runs of LDBC Q1 per mode, plus
// the on/off ratio, mirrored into BENCH_memory_accounting.json (one
// record per mode, params: mode, sf, workers, query, peak_bytes;
// wall_ms is the median, the remaining fields come from the median
// run's tracker).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

using gradoop::bench::BenchHarness;
using gradoop::bench::JsonReporter;
using gradoop::bench::RunResult;

double MedianWallMs(std::vector<double> wall_ms) {
  std::sort(wall_ms.begin(), wall_ms.end());
  return wall_ms[wall_ms.size() / 2];
}

}  // namespace

int main() {
  constexpr int kIters = 15;
  constexpr int kWarmup = 3;
  const double sf = gradoop::bench::MiniSf10();
  const int workers = 4;

  JsonReporter reporter("memory_accounting");
  BenchHarness harness;
  const std::string query = gradoop::ldbc::Query1(
      harness.FirstName(sf, gradoop::ldbc::Selectivity::kMedium));

  // One engine serves both modes; the toggle is exactly the switch a
  // user flips (CypherEngine::set_account_memory), so the comparison
  // isolates the Charge/Release/frame bookkeeping.
  gradoop::query::CypherEngine& engine = harness.Engine(sf, workers);
  auto ctx = engine.graph().context();
  {
    gradoop::dataflow::ClusterConfig cluster;
    cluster.num_workers = workers;
    reporter.set_cluster(cluster);
  }

  char sf_text[32];
  std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);

  std::printf(
      "memory-accounting overhead, LDBC Q1, sf %.2f, %d workers, %d iters\n",
      sf, workers, kIters);
  std::printf("%-10s %12s %14s\n", "accounting", "median [ms]", "peak [B]");

  double median_off = 0.0;
  double median_on = 0.0;
  for (const bool enabled : {false, true}) {
    engine.set_account_memory(enabled);
    std::vector<double> wall_ms;
    RunResult last;
    uint64_t peak = 0;
    for (int i = 0; i < kWarmup + kIters; ++i) {
      last = harness.Run(sf, workers, query);
      if (i >= kWarmup) wall_ms.push_back(last.wall_sec * 1e3);
      // The engine disables the accountant after each query but leaves
      // the totals for the gauges; Reset happens at the next Execute.
      peak = ctx->accountant().peak_bytes();
    }
    // Structural pin: with accounting off the accountant must never be
    // charged — a zero peak proves every site is behind enabled(), which
    // a wall-clock ratio alone cannot.
    if (!enabled && peak != 0) {
      std::fprintf(stderr,
                   "FAIL: accounting disabled but the accountant recorded "
                   "a %llu-byte peak — a charge site is not gated on "
                   "enabled()\n",
                   static_cast<unsigned long long>(peak));
      return 1;
    }
    if (enabled && peak == 0) {
      std::fprintf(stderr,
                   "FAIL: accounting enabled but the measured peak is 0 — "
                   "the engine no longer enables the accountant per query\n");
      return 1;
    }
    const double median = MedianWallMs(std::move(wall_ms));
    (enabled ? median_on : median_off) = median;
    last.wall_sec = median / 1e3;
    reporter.Record({{"mode", enabled ? "on" : "off"},
                     {"sf", sf_text},
                     {"workers", std::to_string(workers)},
                     {"query", query},
                     {"peak_bytes", std::to_string(peak)}},
                    last);
    std::printf("%-10s %12.3f %14llu\n", enabled ? "on" : "off", median,
                static_cast<unsigned long long>(peak));
  }
  engine.set_account_memory(true);  // the engine default

  std::printf("on/off ratio: %.3f (accounting is integer bookkeeping on "
              "the driver thread and must stay at the baseline)\n",
              median_off > 0.0 ? median_on / median_off : 0.0);
  return 0;
}
