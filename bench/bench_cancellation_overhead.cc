// Pins the cost of the cancellation checkpoint (common/cancellation.h).
// The contract: a disabled token — neither cancelled, nor under a
// deadline, nor carrying an injected checkpoint — costs one relaxed
// atomic load per CheckCancelled() call, so kernel loops can poll every
// record without a measurable tax. The armed slow path (deadline set)
// additionally pays the poll counter and a strided clock read; it only
// runs while a query actually has a deadline or a cancel in flight.
//
// Output: ns/op per mode over `kIters` poll calls, mirrored into
// BENCH_cancellation_overhead.json (params: mode, disabled_ratio on the
// final row; wall_ms is the whole measured loop, records the iteration
// count). The "disabled" mode is measured against a raw relaxed atomic
// load baseline — the ratio is reported, the hard gate lives in
// tests/cancellation_test.cc's structural checks, not in a timing
// threshold.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "common/cancellation.h"
#include "common/timer.h"

namespace {

using gradoop::bench::JsonReporter;
using gradoop::bench::RunResult;

// Keeps the measured loops from being optimized to nothing without
// adding measurable work of their own.
volatile uint64_t g_sink = 0;

template <typename Fn>
double MeasureNsPerOp(uint64_t iters, Fn&& op) {
  gradoop::Timer timer;
  for (uint64_t i = 0; i < iters; ++i) op();
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

void Report(JsonReporter* reporter, const char* mode, uint64_t iters,
            double ns_per_op, double disabled_ratio = 0.0) {
  RunResult result;
  result.wall_sec = ns_per_op * static_cast<double>(iters) / 1e9;
  result.records = iters;
  char ns_text[32];
  std::snprintf(ns_text, sizeof(ns_text), "%.2f", ns_per_op);
  std::map<std::string, std::string> params = {{"mode", mode},
                                               {"ns_per_op", ns_text}};
  if (disabled_ratio > 0.0) {
    char ratio_text[32];
    std::snprintf(ratio_text, sizeof(ratio_text), "%.3f", disabled_ratio);
    params["disabled_ratio"] = ratio_text;
  }
  reporter->Record(std::move(params), result);
  std::printf("%-10s %10.2f ns/op\n", mode, ns_per_op);
}

}  // namespace

int main() {
  constexpr uint64_t kIters = 20'000'000;

  std::printf("cancellation checkpoint overhead, %llu polls per mode\n",
              static_cast<unsigned long long>(kIters));

  JsonReporter reporter("cancellation_overhead");

  // Baseline: the one relaxed load the disabled fast path is specified
  // to cost (cancellation.h's CheckCancelled contract).
  // ordering: relaxed — bench-local flag, measures the load alone.
  std::atomic<bool> raw_flag{false};
  const double raw_ns = MeasureNsPerOp(kIters, [&raw_flag] {
    if (raw_flag.load(std::memory_order_relaxed)) g_sink = g_sink + 1;
  });
  Report(&reporter, "raw_load", kIters, raw_ns);

  // Disabled token: the per-record cost every kernel loop pays whether
  // or not the query carries a deadline. Must match raw_load.
  gradoop::common::CancellationToken disabled;
  const double disabled_ns = MeasureNsPerOp(kIters, [&disabled] {
    if (disabled.CheckCancelled()) g_sink = g_sink + 1;
  });

  // Armed token (far-future deadline, never trips): the slow path's
  // fetch_add plus a clock read every kDeadlineCheckStride polls.
  gradoop::common::CancellationToken armed;
  armed.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(24));
  const double armed_ns = MeasureNsPerOp(kIters, [&armed] {
    if (armed.CheckCancelled()) g_sink = g_sink + 1;
  });

  const double ratio = raw_ns > 0.0 ? disabled_ns / raw_ns : 0.0;
  Report(&reporter, "disabled", kIters, disabled_ns, ratio);
  Report(&reporter, "armed", kIters, armed_ns);

  std::printf(
      "disabled/raw ratio: %.3f (contract: one relaxed load, ~1.0)\n",
      ratio);
  if (armed.cancelled()) {
    std::fprintf(stderr,
                 "FAIL: a 24h deadline tripped during the benchmark\n");
    return 1;
  }
  return 0;
}
