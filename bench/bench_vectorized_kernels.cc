// Row-vs-batch kernel micro-benchmark (docs/vectorized.md): the same
// query, executed by the row engine and by the columnar batch engine,
// isolating the two vectorized hot paths —
//
//   filter  a selective scan whose residual predicate runs in the
//           select-loop (per-row kernel dispatch vs one pass per batch)
//   probe   the triangle join (per-row key strings and hash probes vs
//           column-sliced key extraction and the u64 probe fast path)
//   mixed   Query 6, joins plus scan sharing-sized intermediates
//
// Both engines must return identical match counts; the reported speedup
// is best-of-N *execute-phase* wall clock row/batch — parse, analyze,
// plan and compile are byte-for-byte the same work in both engines and
// would only dilute the kernel comparison. CI archives
// BENCH_vectorized_kernels.json.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace {

using gradoop::bench::JsonReporter;
using gradoop::bench::MiniSf10;
using gradoop::bench::RunResult;

struct Sample {
  uint64_t matches = 0;
  double wall_sec = 0.0;
  double simulated_sec = 0.0;
  uint64_t records = 0;
};

Sample RunBest(gradoop::query::CypherEngine* engine,
               const std::string& query, int iterations) {
  Sample best;
  best.wall_sec = 1e30;
  for (int i = 0; i < iterations; ++i) {
    auto& tracker = engine->graph().context()->tracker();
    tracker.Reset();
    auto result = engine->Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    // The kernel under test is the execute phase; the front-end phases
    // (parse, analyze, plan, compile) are engine-independent.
    double wall = 0.0;
    for (const auto& phase : result.value().phases) {
      if (phase.name == "execute") wall = phase.wall_sec;
    }
    if (wall > 0.0 && wall < best.wall_sec) {
      best.wall_sec = wall;
      best.matches = result.value().embeddings.data.Count();
      best.simulated_sec = tracker.SimulatedSeconds();
      best.records = tracker.TotalRecords();
    }
  }
  return best;
}

}  // namespace

int main() {
  const double sf = MiniSf10();
  const int workers = 4;
  const int iterations = 9;
  JsonReporter reporter("vectorized_kernels");

  gradoop::ldbc::LdbcConfig config;
  config.scale_factor = sf;
  const gradoop::ldbc::LdbcElements elements =
      gradoop::ldbc::LdbcGenerator(config).GenerateElements();
  const std::string first_name = gradoop::ldbc::PickFirstName(
      elements, gradoop::ldbc::Selectivity::kMedium);

  gradoop::dataflow::ClusterConfig cluster;
  cluster.num_workers = workers;
  reporter.set_cluster(cluster);
  auto ctx = gradoop::dataflow::MakeContext(cluster);
  gradoop::epgm::GraphHead head(0, "SocialNetwork");
  auto graph = gradoop::epgm::LogicalGraph::FromVectors(
      ctx, head, elements.vertices, elements.edges);

  gradoop::query::PlannerOptions row_options;
  gradoop::query::PlannerOptions batch_options;
  batch_options.engine =
      gradoop::query::PlannerOptions::ExecutionEngine::kBatch;
  gradoop::query::CypherEngine row_engine(graph, row_options);
  gradoop::query::CypherEngine batch_engine(graph, batch_options);

  struct Kernel {
    const char* name;
    std::string query;
  };
  const Kernel kernels[] = {
      {"filter",
       "MATCH (m:Comment|Post)-[:hasCreator]->(p:Person) "
       "WHERE p.firstName = '" + first_name + "' "
       "RETURN m.creationDate"},
      {"probe", gradoop::ldbc::Query5()},
      {"mixed", gradoop::ldbc::Query6()},
  };

  std::printf("%-8s %9s %12s %12s %8s\n", "kernel", "matches", "row [ms]",
              "batch [ms]", "speedup");
  for (const Kernel& kernel : kernels) {
    const Sample row = RunBest(&row_engine, kernel.query, iterations);
    const Sample batch = RunBest(&batch_engine, kernel.query, iterations);
    if (row.matches != batch.matches) {
      std::fprintf(stderr,
                   "%s: engines disagree (row %llu vs batch %llu)\n",
                   kernel.name,
                   static_cast<unsigned long long>(row.matches),
                   static_cast<unsigned long long>(batch.matches));
      return 1;
    }
    const double speedup =
        batch.wall_sec > 0.0 ? row.wall_sec / batch.wall_sec : 0.0;
    std::printf("%-8s %9llu %12.3f %12.3f %7.2fx\n", kernel.name,
                static_cast<unsigned long long>(row.matches),
                row.wall_sec * 1e3, batch.wall_sec * 1e3, speedup);
    char sf_text[32];
    std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);
    for (const auto& [engine_name, sample] :
         {std::pair<const char*, const Sample&>{"row", row},
          std::pair<const char*, const Sample&>{"batch", batch}}) {
      RunResult result;
      result.matches = sample.matches;
      result.wall_sec = sample.wall_sec;
      result.simulated_sec = sample.simulated_sec;
      result.records = sample.records;
      reporter.Record({{"sf", sf_text},
                       {"workers", std::to_string(workers)},
                       {"kernel", kernel.name},
                       {"engine", engine_name}},
                      result);
    }
  }
  return 0;
}
