// Pins the cost of the query flight recorder. Recording happens only on
// traced queries (telemetry on), so the disabled row measures the
// default path — one relaxed atomic load per query, no profile built,
// no ring touched — and must stay at the no-telemetry baseline. The
// enabled row pays profile construction (plan walk + metrics snapshot)
// plus one ring append under the telemetry-ranked recorder mutex, which
// is the whole per-query price of always-on flight recording.
//
// Output: median wall ms over `iters` runs of LDBC Q1 per mode, the
// on/off ratio, and the recorder occupancy after the enabled runs
// (entries retained, bytes, evictions), mirrored into
// BENCH_flight_recorder.json (one record per mode; params: mode, sf,
// workers, query; wall_ms is the median).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace {

using gradoop::bench::BenchHarness;
using gradoop::bench::JsonReporter;
using gradoop::bench::RunResult;

double MedianWallMs(std::vector<double> wall_ms) {
  std::sort(wall_ms.begin(), wall_ms.end());
  return wall_ms[wall_ms.size() / 2];
}

}  // namespace

int main() {
  constexpr int kIters = 15;
  constexpr int kWarmup = 3;
  const double sf = gradoop::bench::MiniSf10();
  const int workers = 4;

  JsonReporter reporter("flight_recorder");
  BenchHarness harness;
  const std::string query = gradoop::ldbc::Query1(
      harness.FirstName(sf, gradoop::ldbc::Selectivity::kMedium));

  gradoop::query::CypherEngine& engine = harness.Engine(sf, workers);
  auto ctx = engine.graph().context();
  {
    gradoop::dataflow::ClusterConfig cluster;
    cluster.num_workers = workers;
    reporter.set_cluster(cluster);
  }

  char sf_text[32];
  std::snprintf(sf_text, sizeof(sf_text), "%.2f", sf);

  std::printf("flight recorder, LDBC Q1, sf %.2f, %d workers, %d iters\n",
              sf, workers, kIters);
  std::printf("%-10s %12s %10s\n", "recording", "median [ms]", "entries");

  double median_off = 0.0;
  double median_on = 0.0;
  for (const bool enabled : {false, true}) {
    if (enabled) {
      ctx->EnableTelemetry();
    } else {
      ctx->DisableTelemetry();
    }
    ctx->flight_recorder().Clear();
    std::vector<double> wall_ms;
    RunResult last;
    for (int i = 0; i < kWarmup + kIters; ++i) {
      ctx->telemetry().ResetData();
      last = harness.Run(sf, workers, query);
      if (i >= kWarmup) wall_ms.push_back(last.wall_sec * 1e3);
    }
    const double median = MedianWallMs(std::move(wall_ms));
    (enabled ? median_on : median_off) = median;
    last.wall_sec = median / 1e3;
    reporter.Record({{"mode", enabled ? "on" : "off"},
                     {"sf", sf_text},
                     {"workers", std::to_string(workers)},
                     {"query", query}},
                    last);
    std::printf("%-10s %12.3f %10zu\n", enabled ? "on" : "off", median,
                ctx->flight_recorder().size());
  }
  const size_t entries = ctx->flight_recorder().size();
  const size_t retained = ctx->flight_recorder().retained_bytes();
  const size_t dropped = ctx->flight_recorder().dropped();
  ctx->DisableTelemetry();

  std::printf("recorder: %zu entries, %zu bytes retained, %zu evicted\n",
              entries, retained, dropped);
  std::printf("on/off ratio: %.3f (off is the default: no profile is "
              "built and the ring is never touched)\n",
              median_off > 0.0 ? median_on / median_off : 0.0);
  return 0;
}
