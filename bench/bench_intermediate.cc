// Reproduces Table 3: intermediate result sizes (embedding counts) of
// four sub-patterns of Query 3 at three firstName selectivities. The
// paper's point: the pattern suffix amplifies the selected persons by
// several orders of magnitude, superlinearly for the knows+hasCreator
// suffix.
#include <cstdio>

#include "bench/bench_common.h"

using namespace gradoop;        // NOLINT
using namespace gradoop::bench;  // NOLINT

namespace {

std::string Pattern(int index, const std::string& name) {
  const std::string where = " WHERE p1.firstName = '" + name + "' RETURN *";
  switch (index) {
    case 0:
      return "MATCH (p1:Person)" + where;
    case 1:
      return "MATCH (p1:Person)<-[:hasCreator]-(m:Comment|Post)" + where;
    case 2:
      return "MATCH (p1:Person)-[:knows]->(p2:Person)" + where;
    default:
      return "MATCH (p1:Person)-[:knows]->(p2:Person)"
             "<-[:hasCreator]-(c:Comment)" +
             where;
  }
}

const char* PatternLabel(int index) {
  static const char* kLabels[] = {
      "(:Person)",
      "(:Person)<-[:hasCreator]-(:Comment|Post)",
      "(:Person)-[:knows]->(:Person)",
      "(:Person)-[:knows]->(:Person)<-[:hasCreator]-(:Comment)",
  };
  return kLabels[index];
}

}  // namespace

int main() {
  const double sf = MiniSf10();
  std::printf(
      "Table 3 — intermediate result sizes (embedding counts, sf=%.2f)\n\n",
      sf);
  std::printf("%-58s %10s %10s %10s\n", "pattern", "high", "medium", "low");

  BenchHarness harness;
  JsonReporter reporter("intermediate");
  harness.set_reporter(&reporter);
  const ldbc::Selectivity kLevels[] = {ldbc::Selectivity::kHigh,
                                       ldbc::Selectivity::kMedium,
                                       ldbc::Selectivity::kLow};
  for (int p = 0; p < 4; ++p) {
    std::printf("%-58s", PatternLabel(p));
    for (ldbc::Selectivity level : kLevels) {
      const std::string query = Pattern(p, harness.FirstName(sf, level));
      const RunResult r = harness.Run(sf, 4, query);
      std::printf(" %10llu", static_cast<unsigned long long>(r.matches));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpectation (paper): each suffix multiplies the count; the final "
      "pattern grows superlinearly with the selected persons.\n");
  return 0;
}
