file(REMOVE_RECURSE
  "libgradoop_cypher.a"
)
