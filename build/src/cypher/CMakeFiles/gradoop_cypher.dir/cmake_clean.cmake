file(REMOVE_RECURSE
  "CMakeFiles/gradoop_cypher.dir/expression.cc.o"
  "CMakeFiles/gradoop_cypher.dir/expression.cc.o.d"
  "CMakeFiles/gradoop_cypher.dir/lexer.cc.o"
  "CMakeFiles/gradoop_cypher.dir/lexer.cc.o.d"
  "CMakeFiles/gradoop_cypher.dir/parser.cc.o"
  "CMakeFiles/gradoop_cypher.dir/parser.cc.o.d"
  "CMakeFiles/gradoop_cypher.dir/query_graph.cc.o"
  "CMakeFiles/gradoop_cypher.dir/query_graph.cc.o.d"
  "libgradoop_cypher.a"
  "libgradoop_cypher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_cypher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
