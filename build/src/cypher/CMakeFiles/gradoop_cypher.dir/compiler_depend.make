# Empty compiler generated dependencies file for gradoop_cypher.
# This may be replaced when dependencies are built.
