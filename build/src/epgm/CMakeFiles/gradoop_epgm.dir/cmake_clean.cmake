file(REMOVE_RECURSE
  "CMakeFiles/gradoop_epgm.dir/csv_io.cc.o"
  "CMakeFiles/gradoop_epgm.dir/csv_io.cc.o.d"
  "CMakeFiles/gradoop_epgm.dir/grouping.cc.o"
  "CMakeFiles/gradoop_epgm.dir/grouping.cc.o.d"
  "CMakeFiles/gradoop_epgm.dir/indexed_logical_graph.cc.o"
  "CMakeFiles/gradoop_epgm.dir/indexed_logical_graph.cc.o.d"
  "CMakeFiles/gradoop_epgm.dir/operators.cc.o"
  "CMakeFiles/gradoop_epgm.dir/operators.cc.o.d"
  "CMakeFiles/gradoop_epgm.dir/properties.cc.o"
  "CMakeFiles/gradoop_epgm.dir/properties.cc.o.d"
  "CMakeFiles/gradoop_epgm.dir/property_value.cc.o"
  "CMakeFiles/gradoop_epgm.dir/property_value.cc.o.d"
  "libgradoop_epgm.a"
  "libgradoop_epgm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_epgm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
