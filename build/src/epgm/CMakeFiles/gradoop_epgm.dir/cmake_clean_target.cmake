file(REMOVE_RECURSE
  "libgradoop_epgm.a"
)
