
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epgm/csv_io.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/csv_io.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/csv_io.cc.o.d"
  "/root/repo/src/epgm/grouping.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/grouping.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/grouping.cc.o.d"
  "/root/repo/src/epgm/indexed_logical_graph.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/indexed_logical_graph.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/indexed_logical_graph.cc.o.d"
  "/root/repo/src/epgm/operators.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/operators.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/operators.cc.o.d"
  "/root/repo/src/epgm/properties.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/properties.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/properties.cc.o.d"
  "/root/repo/src/epgm/property_value.cc" "src/epgm/CMakeFiles/gradoop_epgm.dir/property_value.cc.o" "gcc" "src/epgm/CMakeFiles/gradoop_epgm.dir/property_value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gradoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gradoop_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
