# Empty compiler generated dependencies file for gradoop_epgm.
# This may be replaced when dependencies are built.
