file(REMOVE_RECURSE
  "CMakeFiles/gradoop_dataflow.dir/cost_model.cc.o"
  "CMakeFiles/gradoop_dataflow.dir/cost_model.cc.o.d"
  "CMakeFiles/gradoop_dataflow.dir/thread_pool.cc.o"
  "CMakeFiles/gradoop_dataflow.dir/thread_pool.cc.o.d"
  "libgradoop_dataflow.a"
  "libgradoop_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
