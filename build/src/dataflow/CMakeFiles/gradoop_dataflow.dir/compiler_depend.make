# Empty compiler generated dependencies file for gradoop_dataflow.
# This may be replaced when dependencies are built.
