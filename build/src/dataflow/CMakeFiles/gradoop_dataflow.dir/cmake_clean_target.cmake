file(REMOVE_RECURSE
  "libgradoop_dataflow.a"
)
