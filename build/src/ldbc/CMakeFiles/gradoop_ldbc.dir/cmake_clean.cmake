file(REMOVE_RECURSE
  "CMakeFiles/gradoop_ldbc.dir/ldbc_generator.cc.o"
  "CMakeFiles/gradoop_ldbc.dir/ldbc_generator.cc.o.d"
  "libgradoop_ldbc.a"
  "libgradoop_ldbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_ldbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
