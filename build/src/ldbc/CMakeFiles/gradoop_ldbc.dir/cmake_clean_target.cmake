file(REMOVE_RECURSE
  "libgradoop_ldbc.a"
)
