# Empty compiler generated dependencies file for gradoop_ldbc.
# This may be replaced when dependencies are built.
