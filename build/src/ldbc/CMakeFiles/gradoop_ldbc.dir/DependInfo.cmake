
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldbc/ldbc_generator.cc" "src/ldbc/CMakeFiles/gradoop_ldbc.dir/ldbc_generator.cc.o" "gcc" "src/ldbc/CMakeFiles/gradoop_ldbc.dir/ldbc_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gradoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/epgm/CMakeFiles/gradoop_epgm.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gradoop_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
