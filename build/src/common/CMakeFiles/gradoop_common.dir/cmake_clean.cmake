file(REMOVE_RECURSE
  "CMakeFiles/gradoop_common.dir/random.cc.o"
  "CMakeFiles/gradoop_common.dir/random.cc.o.d"
  "CMakeFiles/gradoop_common.dir/status.cc.o"
  "CMakeFiles/gradoop_common.dir/status.cc.o.d"
  "CMakeFiles/gradoop_common.dir/strings.cc.o"
  "CMakeFiles/gradoop_common.dir/strings.cc.o.d"
  "libgradoop_common.a"
  "libgradoop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
