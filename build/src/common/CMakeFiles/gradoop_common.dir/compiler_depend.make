# Empty compiler generated dependencies file for gradoop_common.
# This may be replaced when dependencies are built.
