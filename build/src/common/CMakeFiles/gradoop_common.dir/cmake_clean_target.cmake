file(REMOVE_RECURSE
  "libgradoop_common.a"
)
