file(REMOVE_RECURSE
  "libgradoop_query.a"
)
