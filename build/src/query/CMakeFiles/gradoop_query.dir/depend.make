# Empty dependencies file for gradoop_query.
# This may be replaced when dependencies are built.
