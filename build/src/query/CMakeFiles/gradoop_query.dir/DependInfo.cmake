
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/cypher_engine.cc" "src/query/CMakeFiles/gradoop_query.dir/cypher_engine.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/cypher_engine.cc.o.d"
  "/root/repo/src/query/embedding.cc" "src/query/CMakeFiles/gradoop_query.dir/embedding.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/embedding.cc.o.d"
  "/root/repo/src/query/embedding_meta_data.cc" "src/query/CMakeFiles/gradoop_query.dir/embedding_meta_data.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/embedding_meta_data.cc.o.d"
  "/root/repo/src/query/graph_statistics.cc" "src/query/CMakeFiles/gradoop_query.dir/graph_statistics.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/graph_statistics.cc.o.d"
  "/root/repo/src/query/naive_matcher.cc" "src/query/CMakeFiles/gradoop_query.dir/naive_matcher.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/naive_matcher.cc.o.d"
  "/root/repo/src/query/operators.cc" "src/query/CMakeFiles/gradoop_query.dir/operators.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/operators.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/query/CMakeFiles/gradoop_query.dir/plan.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/plan.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/query/CMakeFiles/gradoop_query.dir/planner.cc.o" "gcc" "src/query/CMakeFiles/gradoop_query.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gradoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gradoop_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/epgm/CMakeFiles/gradoop_epgm.dir/DependInfo.cmake"
  "/root/repo/build/src/cypher/CMakeFiles/gradoop_cypher.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
