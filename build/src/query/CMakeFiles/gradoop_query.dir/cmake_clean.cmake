file(REMOVE_RECURSE
  "CMakeFiles/gradoop_query.dir/cypher_engine.cc.o"
  "CMakeFiles/gradoop_query.dir/cypher_engine.cc.o.d"
  "CMakeFiles/gradoop_query.dir/embedding.cc.o"
  "CMakeFiles/gradoop_query.dir/embedding.cc.o.d"
  "CMakeFiles/gradoop_query.dir/embedding_meta_data.cc.o"
  "CMakeFiles/gradoop_query.dir/embedding_meta_data.cc.o.d"
  "CMakeFiles/gradoop_query.dir/graph_statistics.cc.o"
  "CMakeFiles/gradoop_query.dir/graph_statistics.cc.o.d"
  "CMakeFiles/gradoop_query.dir/naive_matcher.cc.o"
  "CMakeFiles/gradoop_query.dir/naive_matcher.cc.o.d"
  "CMakeFiles/gradoop_query.dir/operators.cc.o"
  "CMakeFiles/gradoop_query.dir/operators.cc.o.d"
  "CMakeFiles/gradoop_query.dir/plan.cc.o"
  "CMakeFiles/gradoop_query.dir/plan.cc.o.d"
  "CMakeFiles/gradoop_query.dir/planner.cc.o"
  "CMakeFiles/gradoop_query.dir/planner.cc.o.d"
  "libgradoop_query.a"
  "libgradoop_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradoop_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
