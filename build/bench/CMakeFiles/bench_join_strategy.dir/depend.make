# Empty dependencies file for bench_join_strategy.
# This may be replaced when dependencies are built.
