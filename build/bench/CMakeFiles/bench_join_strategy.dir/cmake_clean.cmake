file(REMOVE_RECURSE
  "CMakeFiles/bench_join_strategy.dir/bench_join_strategy.cc.o"
  "CMakeFiles/bench_join_strategy.dir/bench_join_strategy.cc.o.d"
  "bench_join_strategy"
  "bench_join_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
