file(REMOVE_RECURSE
  "CMakeFiles/bench_datasize.dir/bench_datasize.cc.o"
  "CMakeFiles/bench_datasize.dir/bench_datasize.cc.o.d"
  "bench_datasize"
  "bench_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
