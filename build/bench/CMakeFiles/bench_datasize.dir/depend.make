# Empty dependencies file for bench_datasize.
# This may be replaced when dependencies are built.
