# Empty compiler generated dependencies file for bench_indexed_scan.
# This may be replaced when dependencies are built.
