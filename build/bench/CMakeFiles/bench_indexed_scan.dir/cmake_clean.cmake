file(REMOVE_RECURSE
  "CMakeFiles/bench_indexed_scan.dir/bench_indexed_scan.cc.o"
  "CMakeFiles/bench_indexed_scan.dir/bench_indexed_scan.cc.o.d"
  "bench_indexed_scan"
  "bench_indexed_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indexed_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
