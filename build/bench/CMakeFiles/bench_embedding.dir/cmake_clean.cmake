file(REMOVE_RECURSE
  "CMakeFiles/bench_embedding.dir/bench_embedding.cc.o"
  "CMakeFiles/bench_embedding.dir/bench_embedding.cc.o.d"
  "bench_embedding"
  "bench_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
