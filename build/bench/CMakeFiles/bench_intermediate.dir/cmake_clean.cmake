file(REMOVE_RECURSE
  "CMakeFiles/bench_intermediate.dir/bench_intermediate.cc.o"
  "CMakeFiles/bench_intermediate.dir/bench_intermediate.cc.o.d"
  "bench_intermediate"
  "bench_intermediate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
