# Empty dependencies file for bench_intermediate.
# This may be replaced when dependencies are built.
