file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_sharing.dir/bench_scan_sharing.cc.o"
  "CMakeFiles/bench_scan_sharing.dir/bench_scan_sharing.cc.o.d"
  "bench_scan_sharing"
  "bench_scan_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
