# Empty compiler generated dependencies file for bench_scan_sharing.
# This may be replaced when dependencies are built.
