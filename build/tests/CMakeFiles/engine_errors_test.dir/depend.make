# Empty dependencies file for engine_errors_test.
# This may be replaced when dependencies are built.
