file(REMOVE_RECURSE
  "CMakeFiles/engine_errors_test.dir/engine_errors_test.cc.o"
  "CMakeFiles/engine_errors_test.dir/engine_errors_test.cc.o.d"
  "engine_errors_test"
  "engine_errors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
