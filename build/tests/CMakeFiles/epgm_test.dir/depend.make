# Empty dependencies file for epgm_test.
# This may be replaced when dependencies are built.
