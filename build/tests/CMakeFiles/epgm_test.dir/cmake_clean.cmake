file(REMOVE_RECURSE
  "CMakeFiles/epgm_test.dir/epgm_test.cc.o"
  "CMakeFiles/epgm_test.dir/epgm_test.cc.o.d"
  "epgm_test"
  "epgm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epgm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
