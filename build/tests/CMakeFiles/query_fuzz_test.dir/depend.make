# Empty dependencies file for query_fuzz_test.
# This may be replaced when dependencies are built.
