# Empty dependencies file for return_clause_test.
# This may be replaced when dependencies are built.
