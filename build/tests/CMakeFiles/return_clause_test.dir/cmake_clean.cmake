file(REMOVE_RECURSE
  "CMakeFiles/return_clause_test.dir/return_clause_test.cc.o"
  "CMakeFiles/return_clause_test.dir/return_clause_test.cc.o.d"
  "return_clause_test"
  "return_clause_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/return_clause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
