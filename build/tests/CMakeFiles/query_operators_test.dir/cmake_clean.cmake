file(REMOVE_RECURSE
  "CMakeFiles/query_operators_test.dir/query_operators_test.cc.o"
  "CMakeFiles/query_operators_test.dir/query_operators_test.cc.o.d"
  "query_operators_test"
  "query_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
