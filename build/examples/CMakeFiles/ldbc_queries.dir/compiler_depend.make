# Empty compiler generated dependencies file for ldbc_queries.
# This may be replaced when dependencies are built.
