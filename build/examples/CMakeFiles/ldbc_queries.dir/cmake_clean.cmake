file(REMOVE_RECURSE
  "CMakeFiles/ldbc_queries.dir/ldbc_queries.cpp.o"
  "CMakeFiles/ldbc_queries.dir/ldbc_queries.cpp.o.d"
  "ldbc_queries"
  "ldbc_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbc_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
