file(REMOVE_RECURSE
  "CMakeFiles/morphism_semantics.dir/morphism_semantics.cpp.o"
  "CMakeFiles/morphism_semantics.dir/morphism_semantics.cpp.o.d"
  "morphism_semantics"
  "morphism_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphism_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
