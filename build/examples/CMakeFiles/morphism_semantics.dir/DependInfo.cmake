
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/morphism_semantics.cpp" "examples/CMakeFiles/morphism_semantics.dir/morphism_semantics.cpp.o" "gcc" "examples/CMakeFiles/morphism_semantics.dir/morphism_semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/gradoop_query.dir/DependInfo.cmake"
  "/root/repo/build/src/ldbc/CMakeFiles/gradoop_ldbc.dir/DependInfo.cmake"
  "/root/repo/build/src/cypher/CMakeFiles/gradoop_cypher.dir/DependInfo.cmake"
  "/root/repo/build/src/epgm/CMakeFiles/gradoop_epgm.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gradoop_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gradoop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
