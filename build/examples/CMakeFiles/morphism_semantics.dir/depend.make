# Empty dependencies file for morphism_semantics.
# This may be replaced when dependencies are built.
