file(REMOVE_RECURSE
  "CMakeFiles/analytical_pipeline.dir/analytical_pipeline.cpp.o"
  "CMakeFiles/analytical_pipeline.dir/analytical_pipeline.cpp.o.d"
  "analytical_pipeline"
  "analytical_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytical_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
