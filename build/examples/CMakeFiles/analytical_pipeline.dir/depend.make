# Empty dependencies file for analytical_pipeline.
# This may be replaced when dependencies are built.
