#!/usr/bin/env bash
# Full static-analysis + sanitizer gate. Configures three build trees:
#
#   build-check/plain  RelWithDebInfo, -Werror         (warning-clean gate)
#   build-check/asan   Debug, ASan + UBSan             (memory & UB gate)
#   build-check/tsan   Debug, TSan                     (data-race gate)
#
# builds each, runs the full ctest suite in each, and fails on any
# warning, test failure, or sanitizer report. Run from anywhere:
#
#   ci/check.sh            # everything
#   ci/check.sh plain      # just one tree (plain|asan|tsan)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${ROOT}/build-check"
JOBS="$(nproc 2>/dev/null || echo 4)"
ONLY="${1:-all}"

case "${ONLY}" in
  all|plain|asan|tsan|tidy|lint|explain|profile) ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan|tsan|tidy|lint|explain|profile]" >&2
    echo "unknown tree '${ONLY}'" >&2
    exit 2
    ;;
esac

# Abort on the first sanitizer report and exit non-zero so ctest sees it.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

run_tree() {
  local name="$1"; shift
  echo "=== [${name}] configure ==="
  cmake -B "${OUT}/${name}" -S "${ROOT}" "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${OUT}/${name}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  ctest --test-dir "${OUT}/${name}" --output-on-failure -j "${JOBS}"
}

if [[ "${ONLY}" == "all" || "${ONLY}" == "plain" ]]; then
  run_tree plain \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRADOOP_WERROR=ON
fi

if [[ "${ONLY}" == "all" || "${ONLY}" == "asan" ]]; then
  # The ASan tree also runs with the partitioning audit on: every elided
  # shuffle in the whole suite re-hashes its records and aborts on the
  # first one the compile-time analysis misplaced (docs/partitioning.md).
  GRADOOP_AUDIT_PARTITIONING=1 run_tree asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DGRADOOP_ASAN=ON -DGRADOOP_UBSAN=ON
fi

if [[ "${ONLY}" == "all" || "${ONLY}" == "tsan" ]]; then
  run_tree tsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DGRADOOP_TSAN=ON
fi

# Query lint stage: run the semantic analyzer over every query the repo
# ships (the LDBC benchmark set and the example corpus) and fail on any
# error-severity diagnostic. Reuses the plain tree's cypher_lint binary.
if [[ "${ONLY}" == "all" || "${ONLY}" == "lint" ]]; then
  echo "=== [lint] cypher_lint over LDBC + example queries ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_lint" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_lint
  fi
  "${OUT}/plain/tools/cypher_lint" --ldbc "${ROOT}"/examples/queries/*.cypher
  # Exit-code contract for --werror: a warnings-only query passes the
  # default lint (exit 0) and fails the strict one (exit 1), so CI
  # configurations can rely on the escalation actually escalating.
  WARN_ONLY_QUERY="MATCH (a) WHERE 1 = 1 RETURN a"
  "${OUT}/plain/tools/cypher_lint" -q "${WARN_ONLY_QUERY}" >/dev/null
  if "${OUT}/plain/tools/cypher_lint" --werror -q "${WARN_ONLY_QUERY}" \
      >/dev/null 2>&1
  then
    echo "cypher_lint: --werror must fail a warnings-only query" >&2
    exit 1
  fi
fi

# Plan-compilation stage: lower every shipped query through the full
# planner + PlanCompiler + compiled-plan verifier (EXPLAIN, no
# execution) and fail if any plan does not compile. Reuses the plain
# tree's cypher_explain binary.
if [[ "${ONLY}" == "all" || "${ONLY}" == "explain" ]]; then
  echo "=== [explain] cypher_explain over LDBC + example queries ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_explain" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_explain
  fi
  "${OUT}/plain/tools/cypher_explain" --ldbc \
    "${ROOT}"/examples/queries/*.cypher >/dev/null
  # Exit-code contract: an uncompilable query must fail the tool (and
  # its diagnostic must land on stderr, since stdout is discarded here).
  if "${OUT}/plain/tools/cypher_explain" -q "MATCH (a RETURN" >/dev/null 2>&1
  then
    echo "cypher_explain: expected non-zero exit for a broken query" >&2
    exit 1
  fi
  # Partitioning analysis: with broadcast joins disabled, at least one
  # shipped example plan must show a proven shuffle elision — a silent
  # regression of the analysis would otherwise keep this stage green.
  if ! "${OUT}/plain/tools/cypher_explain" --no-broadcast \
      "${ROOT}"/examples/queries/*.cypher | grep -q "shuffle=elided"
  then
    echo "cypher_explain: no example plan shows an elided shuffle" >&2
    exit 1
  fi
  # ...and the elisions must survive their runtime audit: execute the
  # LDBC set and the example corpus with every elided shuffle re-hashed
  # record-by-record (the audit aborts the process on a misplaced one).
  GRADOOP_AUDIT_PARTITIONING=1 "${OUT}/plain/tools/cypher_explain" \
    --analyze --no-broadcast --ldbc >/dev/null
  GRADOOP_AUDIT_PARTITIONING=1 "${OUT}/plain/tools/cypher_explain" \
    --analyze --no-broadcast "${ROOT}"/examples/queries/*.cypher >/dev/null
fi

# Telemetry stage: profile two LDBC queries with the engine's tracing
# enabled and check both emitted artifacts. cypher_profile already
# schema-validates its own output (well-formed JSON, non-empty spans,
# monotonic timestamps) and exits non-zero on any violation; the stage
# additionally asserts the files actually landed on disk non-empty.
if [[ "${ONLY}" == "all" || "${ONLY}" == "profile" ]]; then
  echo "=== [profile] cypher_profile over LDBC Q1 + Q4 ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_profile" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_profile
  fi
  PROFILE_DIR="${OUT}/profile-artifacts"
  mkdir -p "${PROFILE_DIR}"
  "${OUT}/plain/tools/cypher_profile" --ldbc-q 1 --ldbc-q 4 \
    --out "${PROFILE_DIR}"
  for artifact in TRACE_ldbc_Q1 PROFILE_ldbc_Q1 TRACE_ldbc_Q4 \
                  PROFILE_ldbc_Q4; do
    if [[ ! -s "${PROFILE_DIR}/${artifact}.json" ]]; then
      echo "cypher_profile: missing or empty ${artifact}.json" >&2
      exit 1
    fi
  done
fi

# Optional lint stage: the sanitizer gates above are mandatory, clang-tidy
# runs only where the toolchain provides it.
if [[ "${ONLY}" == "all" || "${ONLY}" == "tidy" ]]; then
  if command -v run-clang-tidy >/dev/null 2>&1; then
    echo "=== [tidy] clang-tidy ==="
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -quiet -p "${OUT}/plain" "${ROOT}/src/"
  else
    echo "=== [tidy] clang-tidy not found, skipping lint stage ==="
  fi
fi

echo "=== all checks passed ==="
