#!/usr/bin/env bash
# Full static-analysis + sanitizer gate. Configures three build trees:
#
#   build-check/plain  RelWithDebInfo, -Werror         (warning-clean gate)
#   build-check/asan   Debug, ASan + UBSan             (memory & UB gate)
#   build-check/tsan   Debug, TSan                     (data-race gate)
#
# builds each, runs the full ctest suite in each, and fails on any
# warning, test failure, or sanitizer report. Tool stages (lint,
# explain, profile, observability, concurrency) reuse the plain tree's
# binaries (observability additionally runs the ASan-tree profiler). Run
# from anywhere:
#
#   ci/check.sh              # everything
#   ci/check.sh plain        # just one tree (plain|asan|tsan)
#   ci/check.sh concurrency  # concurrency lint + -Wthread-safety build
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${ROOT}/build-check"
JOBS="$(nproc 2>/dev/null || echo 4)"
ONLY="${1:-all}"

case "${ONLY}" in
  all|plain|asan|tsan|tidy|lint|explain|profile|observability|concurrency) ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan|tsan|tidy|lint|explain|profile|observability|concurrency]" >&2
    echo "unknown tree '${ONLY}'" >&2
    exit 2
    ;;
esac

# Abort on the first sanitizer report and exit non-zero so ctest sees it.
export ASAN_OPTIONS="halt_on_error=1:abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
# detect_deadlocks turns on TSan's lock-order-inversion detector — the
# dynamic complement of the static lock-rank checker (which also runs in
# the Debug trees via common/lock_rank.h).
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:detect_deadlocks=1"

run_tree() {
  local name="$1"; shift
  echo "=== [${name}] configure ==="
  cmake -B "${OUT}/${name}" -S "${ROOT}" "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${OUT}/${name}" -j "${JOBS}"
  echo "=== [${name}] test ==="
  # Global 300s ceiling: a test that hangs (a loop that stopped polling
  # its cancellation token, a deadlocked wait) fails instead of stalling
  # CI; stress suites carry tighter per-test TIMEOUTs in tests/.
  ctest --test-dir "${OUT}/${name}" --output-on-failure -j "${JOBS}" \
    --timeout 300
}

if [[ "${ONLY}" == "all" || "${ONLY}" == "plain" ]]; then
  run_tree plain \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRADOOP_WERROR=ON
fi

if [[ "${ONLY}" == "all" || "${ONLY}" == "asan" ]]; then
  # The ASan tree also runs with the partitioning and memory audits on:
  # every elided shuffle in the whole suite re-hashes its records and
  # aborts on the first one the compile-time analysis misplaced
  # (docs/partitioning.md), and every executed operator's measured peak
  # is checked against its static memory bound (docs/memory.md). The
  # batch engine's columnar kernels run under the sanitizers here too,
  # via batch_engine_test and the fuzz suite's batch ablation.
  GRADOOP_AUDIT_PARTITIONING=1 GRADOOP_AUDIT_MEMORY=1 run_tree asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DGRADOOP_ASAN=ON -DGRADOOP_UBSAN=ON
  # Cancellation audit (docs/cancellation.md): every LDBC and example
  # query runs twice on each engine — once with a cancel injected at a
  # randomized poll checkpoint (the unwind must surface GQL008, stay
  # within the plan's claimed checkpoint interval and drain the memory
  # accountant; the audit aborts otherwise) and once clean — under the
  # sanitizers.
  echo "=== [asan] injected-cancellation audit over LDBC + examples ==="
  cmake --build "${OUT}/asan" -j "${JOBS}" --target cypher_explain \
    >/dev/null
  for engine in row batch; do
    GRADOOP_AUDIT_CANCELLATION=1 "${OUT}/asan/tools/cypher_explain" \
      --analyze --engine "${engine}" --ldbc >/dev/null
    GRADOOP_AUDIT_CANCELLATION=1 "${OUT}/asan/tools/cypher_explain" \
      --analyze --engine "${engine}" \
      "${ROOT}"/examples/queries/*.cypher >/dev/null
  done
fi

if [[ "${ONLY}" == "all" || "${ONLY}" == "tsan" ]]; then
  # The partitioning audit runs here too (not only in the ASan tree):
  # its counters are shared across concurrently-executing joins, so the
  # audit's own locking deserves the race detector as much as the
  # record placement deserves re-hashing.
  GRADOOP_AUDIT_PARTITIONING=1 run_tree tsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DGRADOOP_TSAN=ON
fi

# Query lint stage: run the semantic analyzer over every query the repo
# ships (the LDBC benchmark set and the example corpus) and fail on any
# error-severity diagnostic. Reuses the plain tree's cypher_lint binary.
if [[ "${ONLY}" == "all" || "${ONLY}" == "lint" ]]; then
  echo "=== [lint] cypher_lint over LDBC + example queries ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_lint" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_lint
  fi
  "${OUT}/plain/tools/cypher_lint" --ldbc "${ROOT}"/examples/queries/*.cypher
  # Exit-code contract for --werror: a warnings-only query passes the
  # default lint (exit 0) and fails the strict one (exit 1), so CI
  # configurations can rely on the escalation actually escalating.
  WARN_ONLY_QUERY="MATCH (a) WHERE 1 = 1 RETURN a"
  "${OUT}/plain/tools/cypher_lint" -q "${WARN_ONLY_QUERY}" >/dev/null
  if "${OUT}/plain/tools/cypher_lint" --werror -q "${WARN_ONLY_QUERY}" \
      >/dev/null 2>&1
  then
    echo "cypher_lint: --werror must fail a warnings-only query" >&2
    exit 1
  fi
fi

# Plan-compilation stage: lower every shipped query through the full
# planner + PlanCompiler + compiled-plan verifier (EXPLAIN, no
# execution) and fail if any plan does not compile. Reuses the plain
# tree's cypher_explain binary.
if [[ "${ONLY}" == "all" || "${ONLY}" == "explain" ]]; then
  echo "=== [explain] cypher_explain over LDBC + example queries ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_explain" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_explain
  fi
  "${OUT}/plain/tools/cypher_explain" --ldbc \
    "${ROOT}"/examples/queries/*.cypher >/dev/null
  # Exit-code contract: an uncompilable query must fail the tool (and
  # its diagnostic must land on stderr, since stdout is discarded here).
  if "${OUT}/plain/tools/cypher_explain" -q "MATCH (a RETURN" >/dev/null 2>&1
  then
    echo "cypher_explain: expected non-zero exit for a broken query" >&2
    exit 1
  fi
  # Partitioning analysis: with broadcast joins disabled, at least one
  # shipped example plan must show a proven shuffle elision — a silent
  # regression of the analysis would otherwise keep this stage green.
  if ! "${OUT}/plain/tools/cypher_explain" --no-broadcast \
      "${ROOT}"/examples/queries/*.cypher | grep -q "shuffle=elided"
  then
    echo "cypher_explain: no example plan shows an elided shuffle" >&2
    exit 1
  fi
  # Memory analysis: every compiled operator carries a mem= bound; pin
  # one example EXPLAIN output so a rendering or annotation regression
  # cannot slip through silently (docs/memory.md).
  if ! "${OUT}/plain/tools/cypher_explain" \
      "${ROOT}/examples/queries/quickstart.cypher" \
      | grep -q "mem="
  then
    echo "cypher_explain: example plan is missing mem= annotations" >&2
    exit 1
  fi
  # Batch engine (docs/vectorized.md): every compiled operator carries a
  # verifier-checked batch-layout claim, rendered as batch=<n>; pin one
  # example EXPLAIN so an annotation or rendering regression cannot slip
  # through silently.
  if ! "${OUT}/plain/tools/cypher_explain" --engine batch \
      "${ROOT}/examples/queries/quickstart.cypher" \
      | grep -q "batch="
  then
    echo "cypher_explain: example plan is missing batch= annotations" >&2
    exit 1
  fi
  # ...and the elisions must survive their runtime audit: execute the
  # LDBC set and the example corpus with every elided shuffle re-hashed
  # record-by-record (the audit aborts the process on a misplaced one).
  # The memory audit rides along, checking measured per-operator peaks
  # against the static bounds over the same corpus. Both engines run
  # under the audits — the batch kernels' scatter placement and memory
  # accounting honor the same claims the row engine is held to.
  for engine in row batch; do
    GRADOOP_AUDIT_PARTITIONING=1 GRADOOP_AUDIT_MEMORY=1 \
      "${OUT}/plain/tools/cypher_explain" \
      --analyze --no-broadcast --engine "${engine}" --ldbc >/dev/null
    GRADOOP_AUDIT_PARTITIONING=1 GRADOOP_AUDIT_MEMORY=1 \
      "${OUT}/plain/tools/cypher_explain" \
      --analyze --no-broadcast --engine "${engine}" \
      "${ROOT}"/examples/queries/*.cypher >/dev/null
  done
fi

# Telemetry stage: profile two LDBC queries with the engine's tracing
# enabled and check both emitted artifacts. cypher_profile already
# schema-validates its own output (well-formed JSON, non-empty spans,
# monotonic timestamps) and exits non-zero on any violation; the stage
# additionally asserts the files actually landed on disk non-empty.
if [[ "${ONLY}" == "all" || "${ONLY}" == "profile" ]]; then
  echo "=== [profile] cypher_profile over LDBC Q1 + Q4 ==="
  if [[ ! -x "${OUT}/plain/tools/cypher_profile" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target cypher_profile
  fi
  PROFILE_DIR="${OUT}/profile-artifacts"
  mkdir -p "${PROFILE_DIR}"
  "${OUT}/plain/tools/cypher_profile" --ldbc-q 1 --ldbc-q 4 \
    --out "${PROFILE_DIR}"
  for artifact in TRACE_ldbc_Q1 PROFILE_ldbc_Q1 TRACE_ldbc_Q4 \
                  PROFILE_ldbc_Q4; do
    if [[ ! -s "${PROFILE_DIR}/${artifact}.json" ]]; then
      echo "cypher_profile: missing or empty ${artifact}.json" >&2
      exit 1
    fi
  done
fi

# Observability stage (docs/observability.md): exercise the flight
# recorder and query log over the LDBC corpus under ASan with the
# partitioning/memory audits on (cypher_profile schema-validates the
# recorder export and every JSONL line before exiting), pin the plan-
# quality annotations in EXPLAIN ANALYZE for both engines, and gate a
# fresh bench_ldbc_queries run against the committed baseline with
# cypher_stats --baseline (matches exact; modeled fields within
# tolerance; wall clock reported, never gated).
if [[ "${ONLY}" == "all" || "${ONLY}" == "observability" ]]; then
  echo "=== [observability] flight recorder + query log under ASan ==="
  # Always reconfigure + rebuild the targets — both are incremental, so
  # an up-to-date tree costs seconds, but a stale tree (configured
  # before a target existed, or holding binaries from an earlier
  # checkout) can never run against current sources.
  cmake -B "${OUT}/asan" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DGRADOOP_ASAN=ON -DGRADOOP_UBSAN=ON >/dev/null
  cmake --build "${OUT}/asan" -j "${JOBS}" --target cypher_profile \
    >/dev/null
  OBS_DIR="${OUT}/observability-artifacts"
  mkdir -p "${OBS_DIR}"
  rm -f "${OBS_DIR}/query_log.jsonl"
  GRADOOP_AUDIT_PARTITIONING=1 GRADOOP_AUDIT_MEMORY=1 \
    "${OUT}/asan/tools/cypher_profile" --ldbc \
    --flight-recorder "${OBS_DIR}/flight_recorder.json" \
    --query-log "${OBS_DIR}/query_log.jsonl" --slow-ms 10000 \
    --out "${OBS_DIR}" >/dev/null
  for artifact in flight_recorder.json query_log.jsonl; do
    if [[ ! -s "${OBS_DIR}/${artifact}" ]]; then
      echo "cypher_profile: missing or empty ${artifact}" >&2
      exit 1
    fi
  done

  echo "=== [observability] qerror= plan annotations, both engines ==="
  cmake -B "${OUT}/plain" -S "${ROOT}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
  cmake --build "${OUT}/plain" -j "${JOBS}" \
    --target cypher_explain cypher_stats bench_ldbc_queries \
    bench_vectorized_kernels concurrency_lint >/dev/null
  # Every executed operator must carry qerror= and sel= in EXPLAIN
  # ANALYZE on both engines — the per-plan face of the telemetry.
  for engine in row batch; do
    ANALYZE="$("${OUT}/plain/tools/cypher_explain" --analyze \
      --engine "${engine}" --ldbc)"
    for annotation in "qerror=" "sel="; do
      plan_lines="$(printf '%s\n' "${ANALYZE}" | grep -c "rows=")"
      annotated="$(printf '%s\n' "${ANALYZE}" | grep -c "${annotation}")"
      if [[ "${plan_lines}" -eq 0 || "${plan_lines}" -ne "${annotated}" ]]
      then
        echo "cypher_explain: ${engine} engine has ${annotated}/${plan_lines} operators with ${annotation}" >&2
        exit 1
      fi
    done
  done

  echo "=== [observability] cypher_stats baseline gate ==="
  (cd "${OBS_DIR}" && "${OUT}/plain/bench/bench_ldbc_queries" >/dev/null)
  "${OUT}/plain/tools/cypher_stats" --baseline \
    "${ROOT}/bench/baselines/BENCH_ldbc_queries.json" \
    "${OBS_DIR}/BENCH_ldbc_queries.json"
  # The vectorized-kernel benchmark is gated the same way: matches are
  # exact, modeled fields within tolerance, wall clock never gated.
  (cd "${OBS_DIR}" && "${OUT}/plain/bench/bench_vectorized_kernels" \
    >/dev/null)
  "${OUT}/plain/tools/cypher_stats" --baseline \
    "${ROOT}/bench/baselines/BENCH_vectorized_kernels.json" \
    "${OBS_DIR}/BENCH_vectorized_kernels.json"
  # The aggregate report must render from the run's own artifacts.
  "${OUT}/plain/tools/cypher_stats" \
    "${OBS_DIR}/flight_recorder.json" \
    "${OBS_DIR}/BENCH_ldbc_queries.json" | grep -q "worst misestimates"

  echo "=== [observability] concurrency_lint over src/telemetry ==="
  "${OUT}/plain/tools/concurrency_lint" --root "${ROOT}" src/telemetry
fi

# Concurrency stage (docs/concurrency.md): source-level lint over the
# whole engine plus, where the toolchain has clang, an engine-wide
# -Wthread-safety -Werror verification build and a negative compile
# check proving the GUARDED_BY machinery rejects unguarded access.
if [[ "${ONLY}" == "all" || "${ONLY}" == "concurrency" ]]; then
  echo "=== [concurrency] concurrency_lint over src/ ==="
  if [[ ! -x "${OUT}/plain/tools/concurrency_lint" ]]; then
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/plain" -j "${JOBS}" --target concurrency_lint
  fi
  "${OUT}/plain/tools/concurrency_lint" --root "${ROOT}" src
  # Exit-code contract, mirroring the cypher_lint --werror test: each
  # seeded-violation fixture must fail the gate (a lint that silently
  # stops matching would otherwise keep this stage green forever), and
  # the clean fixture must keep passing.
  for fixture in raw_mutex unguarded_atomic detached_thread \
                 unjustified_escape shared_mutex scoped_lock \
                 unpolled_loop undeadlined_wait; do
    if "${OUT}/plain/tools/concurrency_lint" --root "${ROOT}" \
        "tests/concurrency_lint_fixtures/${fixture}.cc" >/dev/null 2>&1
    then
      echo "concurrency_lint: seeded violation ${fixture}.cc must fail" >&2
      exit 1
    fi
  done
  "${OUT}/plain/tools/concurrency_lint" --root "${ROOT}" \
    tests/concurrency_lint_fixtures/clean.cc >/dev/null

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== [concurrency] clang -Wthread-safety verification build ==="
    cmake -B "${OUT}/thread-safety" -S "${ROOT}" \
      -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGRADOOP_WERROR=ON >/dev/null
    cmake --build "${OUT}/thread-safety" -j "${JOBS}"
    # Positive control first (the fixture is a correct TU without the
    # seed macro), so a failure below can only mean the seeded bug.
    clang++ -fsyntax-only -std=c++20 -Wthread-safety -Werror \
      -I"${ROOT}/src" "${ROOT}/tests/compile_fail/guarded_by_violation.cc"
    if clang++ -fsyntax-only -std=c++20 -Wthread-safety -Werror \
        -DGRADOOP_EXPECT_THREAD_SAFETY_ERROR \
        -I"${ROOT}/src" "${ROOT}/tests/compile_fail/guarded_by_violation.cc" \
        2>/dev/null
    then
      echo "thread-safety: unguarded GUARDED_BY access must not compile" >&2
      exit 1
    fi
  else
    echo "=== [concurrency] clang++ not found, skipping -Wthread-safety verification build ==="
  fi
fi

# Optional lint stage: the sanitizer gates above are mandatory, clang-tidy
# runs only where the toolchain provides it.
if [[ "${ONLY}" == "all" || "${ONLY}" == "tidy" ]]; then
  if command -v run-clang-tidy >/dev/null 2>&1; then
    echo "=== [tidy] clang-tidy ==="
    cmake -B "${OUT}/plain" -S "${ROOT}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -quiet -p "${OUT}/plain" "${ROOT}/src/"
  else
    echo "=== [tidy] clang-tidy not found, skipping lint stage ==="
  fi
fi

echo "=== all checks passed ==="
